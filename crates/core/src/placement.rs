//! Data placement strategies (Section 4.2).
//!
//! Three placements of a dictionary-encoded column over the sockets of the
//! machine are implemented, mirroring Figure 4 of the paper:
//!
//! * **Round-robin (RR)** — the whole column (IV, dictionary, index) is
//!   allocated on a single socket; consecutive columns rotate over the
//!   sockets.
//! * **Index-vector partitioning (IVP)** — the IV is split into equal row
//!   ranges whose pages are placed on different sockets; the dictionary and
//!   the index are interleaved across all sockets because their vid order does
//!   not follow the IV order.
//! * **Physical partitioning (PP)** — the table is split into row ranges and
//!   every part gets its own self-contained IV, dictionary and index on one
//!   socket. The per-part dictionaries duplicate recurring values, which costs
//!   memory (Section 6.2.3).
//!
//! Every placed component is tracked with a [`Psm`] so the planner can derive
//! task affinities from the physical location of the data.

use numascan_numasim::memman::{AllocPolicy, VirtRange};
use numascan_numasim::{Machine, Result, SocketId};
use numascan_psm::Psm;
use serde::{Deserialize, Serialize};

use crate::spec::{ColumnSpec, TableSpec};

/// The data placement strategy of a table or column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlacementStrategy {
    /// Whole columns on single sockets, rotating per column.
    RoundRobin,
    /// The index vector of every column split into `parts` socket-local
    /// ranges; dictionary and index interleaved.
    IndexVectorPartitioned {
        /// Number of IV parts.
        parts: usize,
    },
    /// The table physically split into `parts` self-contained parts, each on
    /// one socket.
    PhysicallyPartitioned {
        /// Number of table parts.
        parts: usize,
    },
}

impl PlacementStrategy {
    /// Number of parts the strategy splits a column into (1 for RR).
    pub fn parts(&self) -> usize {
        match self {
            PlacementStrategy::RoundRobin => 1,
            PlacementStrategy::IndexVectorPartitioned { parts }
            | PlacementStrategy::PhysicallyPartitioned { parts } => (*parts).max(1),
        }
    }

    /// Label used by the benchmark harness ("RR", "IVP8", "PP4", ...).
    pub fn label(&self) -> String {
        match self {
            PlacementStrategy::RoundRobin => "RR".to_string(),
            PlacementStrategy::IndexVectorPartitioned { parts } => format!("IVP{parts}"),
            PlacementStrategy::PhysicallyPartitioned { parts } => format!("PP{parts}"),
        }
    }
}

/// Location of a dictionary or index component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComponentLocation {
    /// Wholly on one socket.
    Socket(SocketId),
    /// Interleaved page-wise over several sockets.
    Interleaved(Vec<SocketId>),
}

/// One socket-local range of a column's index vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IvSegment {
    /// Rows covered by the segment.
    pub rows: std::ops::Range<u64>,
    /// Virtual address range of the segment.
    pub range: VirtRange,
    /// Socket holding the segment's pages.
    pub socket: SocketId,
}

/// A dictionary or inverted-index component (or one physical part of it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentSegment {
    /// Rows whose materialization / lookups hit this component.
    pub rows: std::ops::Range<u64>,
    /// Virtual address range of the component.
    pub range: VirtRange,
    /// Where the component's pages live.
    pub location: ComponentLocation,
    /// Size of the component in bytes.
    pub bytes: u64,
    /// Distinct values covered (dictionary entries of this part).
    pub distinct: u64,
}

/// A column placed on the machine.
#[derive(Debug, Clone)]
pub struct PlacedColumn {
    /// The column's metadata.
    pub spec: ColumnSpec,
    /// Strategy the column was placed with.
    pub strategy: PlacementStrategy,
    /// Socket-local ranges of the index vector, in row order.
    pub iv_segments: Vec<IvSegment>,
    /// Dictionary components (one for RR/IVP, one per part for PP).
    pub dict_segments: Vec<ComponentSegment>,
    /// Inverted-index components (empty when the column has no index).
    pub ix_segments: Vec<ComponentSegment>,
    /// PSM of the index vector.
    pub iv_psm: Psm,
    /// PSM of the dictionary.
    pub dict_psm: Psm,
    /// PSM of the inverted index, when present.
    pub ix_psm: Option<Psm>,
    /// The original allocation ranges of every component, used to release the
    /// column's memory when it is physically rebuilt. (Repartitioning with
    /// IVP moves pages within these allocations and does not change them.)
    pub allocations: Vec<VirtRange>,
}

impl PlacedColumn {
    /// The socket holding the IV pages of a given row.
    pub fn iv_socket_of_row(&self, row: u64) -> SocketId {
        self.iv_segments
            .iter()
            .find(|s| s.rows.contains(&row))
            .map(|s| s.socket)
            .unwrap_or_else(|| self.iv_segments[0].socket)
    }

    /// The dictionary component responsible for a given row.
    pub fn dict_segment_of_row(&self, row: u64) -> &ComponentSegment {
        self.dict_segments.iter().find(|s| s.rows.contains(&row)).unwrap_or(&self.dict_segments[0])
    }

    /// The index component responsible for a given row, when an index exists.
    pub fn ix_segment_of_row(&self, row: u64) -> Option<&ComponentSegment> {
        if self.ix_segments.is_empty() {
            None
        } else {
            Some(
                self.ix_segments
                    .iter()
                    .find(|s| s.rows.contains(&row))
                    .unwrap_or(&self.ix_segments[0]),
            )
        }
    }

    /// All sockets holding at least one IV segment.
    pub fn iv_sockets(&self) -> Vec<SocketId> {
        let mut sockets: Vec<SocketId> = self.iv_segments.iter().map(|s| s.socket).collect();
        sockets.sort();
        sockets.dedup();
        sockets
    }

    /// Total placed bytes of the column, including dictionary duplication
    /// introduced by physical partitioning.
    pub fn placed_bytes(&self) -> u64 {
        let iv: u64 = self.iv_segments.iter().map(|s| s.range.bytes).sum();
        let dict: u64 = self.dict_segments.iter().map(|s| s.bytes).sum();
        let ix: u64 = self.ix_segments.iter().map(|s| s.bytes).sum();
        iv + dict + ix
    }

    /// Memory overhead relative to the unpartitioned column.
    pub fn memory_overhead_fraction(&self) -> f64 {
        let base = self.spec.total_bytes() as f64;
        if base == 0.0 {
            0.0
        } else {
            self.placed_bytes() as f64 / base - 1.0
        }
    }
}

/// A table placed on the machine.
#[derive(Debug, Clone)]
pub struct PlacedTable {
    /// The table's metadata.
    pub spec: TableSpec,
    /// Strategy the table was placed with.
    pub strategy: PlacementStrategy,
    /// The placed columns, in the order of `spec.columns`.
    pub columns: Vec<PlacedColumn>,
}

impl PlacedTable {
    /// Places a table on the machine according to the strategy.
    pub fn place(
        machine: &mut Machine,
        spec: &TableSpec,
        strategy: PlacementStrategy,
    ) -> Result<Self> {
        Self::place_with_offset(machine, spec, strategy, 0)
    }

    /// Places a table, rotating every socket assignment by `socket_offset`.
    ///
    /// When several tables are placed with the same (small) number of physical
    /// partitions, an offset per table keeps the tables from piling up on the
    /// first sockets — e.g. the three BW-EML InfoCubes of Section 6.3 are
    /// distributed round-robin around the machine.
    pub fn place_with_offset(
        machine: &mut Machine,
        spec: &TableSpec,
        strategy: PlacementStrategy,
        socket_offset: usize,
    ) -> Result<Self> {
        let sockets = machine.topology().socket_count();
        let all_sockets: Vec<SocketId> = machine.topology().socket_ids().collect();
        let mut columns = Vec::with_capacity(spec.columns.len());
        for (c, col) in spec.columns.iter().enumerate() {
            let placed = match strategy {
                PlacementStrategy::RoundRobin => {
                    place_column_rr(machine, col, SocketId(((socket_offset + c) % sockets) as u16))?
                }
                PlacementStrategy::IndexVectorPartitioned { parts } => place_column_ivp(
                    machine,
                    col,
                    socket_offset + c,
                    parts.max(1).min(sockets),
                    &all_sockets,
                )?,
                PlacementStrategy::PhysicallyPartitioned { parts } => {
                    place_column_pp(machine, col, parts.max(1), &all_sockets, socket_offset)?
                }
            };
            columns.push(placed);
        }
        Ok(PlacedTable { spec: spec.clone(), strategy, columns })
    }

    /// Total placed bytes of the table.
    pub fn placed_bytes(&self) -> u64 {
        self.columns.iter().map(|c| c.placed_bytes()).sum()
    }
}

/// Places a whole column on one socket (the RR building block).
pub fn place_column_rr(
    machine: &mut Machine,
    spec: &ColumnSpec,
    socket: SocketId,
) -> Result<PlacedColumn> {
    let mem = machine.memory_mut();
    let iv_range = mem.allocate(spec.iv_bytes().max(1), AllocPolicy::OnSocket(socket))?;
    let dict_range = mem.allocate(spec.dict_bytes().max(1), AllocPolicy::OnSocket(socket))?;
    let ix_range = if spec.with_index {
        Some(mem.allocate(spec.ix_bytes().max(1), AllocPolicy::OnSocket(socket))?)
    } else {
        None
    };

    let iv_psm = Psm::from_memory(machine.memory(), iv_range)?;
    let dict_psm = Psm::from_memory(machine.memory(), dict_range)?;
    let ix_psm = match ix_range {
        Some(r) => Some(Psm::from_memory(machine.memory(), r)?),
        None => None,
    };

    let mut allocations = vec![iv_range, dict_range];
    allocations.extend(ix_range);
    Ok(PlacedColumn {
        spec: spec.clone(),
        strategy: PlacementStrategy::RoundRobin,
        allocations,
        iv_segments: vec![IvSegment { rows: 0..spec.rows, range: iv_range, socket }],
        dict_segments: vec![ComponentSegment {
            rows: 0..spec.rows,
            range: dict_range,
            location: ComponentLocation::Socket(socket),
            bytes: spec.dict_bytes(),
            distinct: spec.distinct,
        }],
        ix_segments: match ix_range {
            Some(r) => vec![ComponentSegment {
                rows: 0..spec.rows,
                range: r,
                location: ComponentLocation::Socket(socket),
                bytes: spec.ix_bytes(),
                distinct: spec.distinct,
            }],
            None => Vec::new(),
        },
        iv_psm,
        dict_psm,
        ix_psm,
    })
}

/// Splits `0..rows` into `parts` equal ranges.
fn row_ranges(rows: u64, parts: usize) -> Vec<std::ops::Range<u64>> {
    let parts = parts.max(1) as u64;
    let base = rows / parts;
    let remainder = rows % parts;
    let mut out = Vec::with_capacity(parts as usize);
    let mut cursor = 0;
    for i in 0..parts {
        let len = base + u64::from(i < remainder);
        out.push(cursor..cursor + len);
        cursor += len;
    }
    out
}

/// Places a column with index-vector partitioning across `parts` sockets.
pub fn place_column_ivp(
    machine: &mut Machine,
    spec: &ColumnSpec,
    column_index: usize,
    parts: usize,
    all_sockets: &[SocketId],
) -> Result<PlacedColumn> {
    let sockets = all_sockets.len();
    let ranges = row_ranges(spec.rows, parts);
    let mut iv_segments = Vec::with_capacity(parts);
    let mut iv_psm = Psm::new(sockets);
    for (i, rows) in ranges.into_iter().enumerate() {
        // Distribute partitions round-robin around the sockets, offset by the
        // column index so that the first parts of all columns do not pile up
        // on socket 0.
        let socket = all_sockets[(column_index + i) % sockets];
        let part_rows = rows.end - rows.start;
        let bytes = ((part_rows * spec.bitcase() as u64).div_ceil(8)).max(1);
        let range = machine.memory_mut().allocate(bytes, AllocPolicy::OnSocket(socket))?;
        iv_psm.add_range(machine.memory(), range)?;
        iv_segments.push(IvSegment { rows, range, socket });
    }

    // Dictionary and index are interleaved across all sockets: their vid order
    // does not follow the IV order, so no socket is preferable.
    let dict_range = machine
        .memory_mut()
        .allocate(spec.dict_bytes().max(1), AllocPolicy::Interleaved(all_sockets.to_vec()))?;
    let dict_psm = Psm::from_memory(machine.memory(), dict_range)?;
    let (ix_segments, ix_psm) = if spec.with_index {
        let r = machine
            .memory_mut()
            .allocate(spec.ix_bytes().max(1), AllocPolicy::Interleaved(all_sockets.to_vec()))?;
        (
            vec![ComponentSegment {
                rows: 0..spec.rows,
                range: r,
                location: ComponentLocation::Interleaved(all_sockets.to_vec()),
                bytes: spec.ix_bytes(),
                distinct: spec.distinct,
            }],
            Some(Psm::from_memory(machine.memory(), r)?),
        )
    } else {
        (Vec::new(), None)
    };

    let mut allocations: Vec<VirtRange> = iv_segments.iter().map(|s| s.range).collect();
    allocations.push(dict_range);
    allocations.extend(ix_segments.iter().map(|s| s.range));
    Ok(PlacedColumn {
        spec: spec.clone(),
        strategy: PlacementStrategy::IndexVectorPartitioned { parts },
        allocations,
        iv_segments,
        dict_segments: vec![ComponentSegment {
            rows: 0..spec.rows,
            range: dict_range,
            location: ComponentLocation::Interleaved(all_sockets.to_vec()),
            bytes: spec.dict_bytes(),
            distinct: spec.distinct,
        }],
        ix_segments,
        iv_psm,
        dict_psm,
        ix_psm,
    })
}

/// Places a column with physical partitioning: every part is self-contained
/// (own IV, dictionary and index) on one socket. Part `i` is placed on socket
/// `(socket_offset + i) % sockets`.
pub fn place_column_pp(
    machine: &mut Machine,
    spec: &ColumnSpec,
    parts: usize,
    all_sockets: &[SocketId],
    socket_offset: usize,
) -> Result<PlacedColumn> {
    let sockets = all_sockets.len();
    let ranges = row_ranges(spec.rows, parts);
    let mut iv_segments = Vec::with_capacity(parts);
    let mut dict_segments = Vec::with_capacity(parts);
    let mut ix_segments = Vec::new();
    let mut iv_psm = Psm::new(sockets);
    let mut dict_psm = Psm::new(sockets);
    let mut ix_psm = if spec.with_index { Some(Psm::new(sockets)) } else { None };

    for (i, rows) in ranges.into_iter().enumerate() {
        let socket = all_sockets[(socket_offset + i) % sockets];
        let part_rows = rows.end - rows.start;
        let part_distinct = spec.expected_distinct_in(part_rows);

        let iv_bytes = ((part_rows * spec.bitcase() as u64).div_ceil(8)).max(1);
        let iv_range = machine.memory_mut().allocate(iv_bytes, AllocPolicy::OnSocket(socket))?;
        iv_psm.add_range(machine.memory(), iv_range)?;
        iv_segments.push(IvSegment { rows: rows.clone(), range: iv_range, socket });

        let dict_bytes = (part_distinct * spec.value_bytes).max(1);
        let dict_range =
            machine.memory_mut().allocate(dict_bytes, AllocPolicy::OnSocket(socket))?;
        dict_psm.add_range(machine.memory(), dict_range)?;
        dict_segments.push(ComponentSegment {
            rows: rows.clone(),
            range: dict_range,
            location: ComponentLocation::Socket(socket),
            bytes: dict_bytes,
            distinct: part_distinct,
        });

        if spec.with_index {
            let ix_bytes = (part_rows * 4 + part_distinct * 8).max(1);
            let ix_range =
                machine.memory_mut().allocate(ix_bytes, AllocPolicy::OnSocket(socket))?;
            if let Some(psm) = ix_psm.as_mut() {
                psm.add_range(machine.memory(), ix_range)?;
            }
            ix_segments.push(ComponentSegment {
                rows,
                range: ix_range,
                location: ComponentLocation::Socket(socket),
                bytes: ix_bytes,
                distinct: part_distinct,
            });
        }
    }

    let allocations: Vec<VirtRange> = iv_segments
        .iter()
        .map(|s| s.range)
        .chain(dict_segments.iter().map(|s| s.range))
        .chain(ix_segments.iter().map(|s| s.range))
        .collect();
    Ok(PlacedColumn {
        spec: spec.clone(),
        strategy: PlacementStrategy::PhysicallyPartitioned { parts },
        allocations,
        iv_segments,
        dict_segments,
        ix_segments,
        iv_psm,
        dict_psm,
        ix_psm,
    })
}

/// Moves a whole (RR-placed) column to another socket, updating its PSMs.
pub fn move_column_to(
    machine: &mut Machine,
    column: &mut PlacedColumn,
    target: SocketId,
) -> Result<()> {
    for seg in &mut column.iv_segments {
        column.iv_psm.move_range(machine.memory_mut(), seg.range, target)?;
        seg.socket = target;
    }
    for seg in &mut column.dict_segments {
        column.dict_psm.move_range(machine.memory_mut(), seg.range, target)?;
        seg.location = ComponentLocation::Socket(target);
    }
    for seg in &mut column.ix_segments {
        if let Some(psm) = column.ix_psm.as_mut() {
            psm.move_range(machine.memory_mut(), seg.range, target)?;
        }
        seg.location = ComponentLocation::Socket(target);
    }
    Ok(())
}

/// Repartitions a column's IV across `parts` sockets in place, using
/// `move_pages` semantics (this is the quick IVP repartitioning the adaptive
/// data placer uses for hot, IV-intensive columns). The dictionary and index
/// are interleaved across all sockets.
pub fn repartition_ivp(
    machine: &mut Machine,
    column: &mut PlacedColumn,
    column_index: usize,
    parts: usize,
) -> Result<()> {
    let all_sockets: Vec<SocketId> = machine.topology().socket_ids().collect();
    let sockets = all_sockets.len();
    let parts = parts.max(1).min(sockets);

    // Gather the existing IV allocation (contiguous in allocation order).
    let total_iv_bytes: u64 = column.iv_segments.iter().map(|s| s.range.bytes).sum();
    let rows = column.spec.rows;
    let old_segments = std::mem::take(&mut column.iv_segments);

    // Rebuild segments: reuse the existing virtual ranges, splitting them into
    // `parts` byte ranges and moving each to its target socket.
    let mut flat_ranges: Vec<VirtRange> = old_segments.iter().map(|s| s.range).collect();
    flat_ranges.sort_by_key(|r| r.base);

    let row_parts = row_ranges(rows, parts);
    let mut new_segments = Vec::with_capacity(parts);
    let mut byte_cursor = 0u64;
    for (i, row_range) in row_parts.into_iter().enumerate() {
        let socket = all_sockets[(column_index + i) % sockets];
        let part_rows = row_range.end - row_range.start;
        let part_bytes = if i == parts - 1 {
            total_iv_bytes - byte_cursor
        } else {
            (total_iv_bytes as f64 * part_rows as f64 / rows.max(1) as f64) as u64
        };
        // Find the virtual ranges covering [byte_cursor, byte_cursor + part_bytes).
        let mut remaining = part_bytes;
        let mut offset = byte_cursor;
        let mut covered: Vec<VirtRange> = Vec::new();
        for r in &flat_ranges {
            let r_start = flat_offset(&flat_ranges, r);
            let r_end = r_start + r.bytes;
            if r_end <= offset || remaining == 0 {
                continue;
            }
            let within = offset - r_start;
            let take = (r.bytes - within).min(remaining);
            if take > 0 {
                covered.push(r.subrange(within, take));
                remaining -= take;
                offset += take;
            }
        }
        for sub in &covered {
            if sub.bytes > 0 {
                column.iv_psm.move_range(machine.memory_mut(), *sub, socket)?;
            }
        }
        // Represent the part with one logical segment (the first covering
        // range stands in for the address range; the PSM has the details).
        let range = covered.first().copied().unwrap_or(flat_ranges[0]);
        new_segments.push(IvSegment { rows: row_range, range, socket });
        byte_cursor += part_bytes;
    }
    column.iv_segments = new_segments;
    column.strategy = PlacementStrategy::IndexVectorPartitioned { parts };

    // Interleave the dictionary and index so no socket becomes a hotspot for
    // materialization.
    for seg in &mut column.dict_segments {
        column.dict_psm.interleave_range(machine.memory_mut(), seg.range, &all_sockets)?;
        seg.location = ComponentLocation::Interleaved(all_sockets.clone());
    }
    for seg in &mut column.ix_segments {
        if let Some(psm) = column.ix_psm.as_mut() {
            psm.interleave_range(machine.memory_mut(), seg.range, &all_sockets)?;
        }
        seg.location = ComponentLocation::Interleaved(all_sockets.clone());
    }
    Ok(())
}

/// Byte offset of `range` within the concatenation of `ranges`.
fn flat_offset(ranges: &[VirtRange], range: &VirtRange) -> u64 {
    let mut offset = 0;
    for r in ranges {
        if r.base == range.base {
            return offset;
        }
        offset += r.bytes;
    }
    offset
}

/// Cost estimates for performing or changing a placement (Section 6.2.3: PP on
/// the paper's dataset takes around 18 minutes, IVP around 4 minutes).
#[derive(Debug, Clone, Copy)]
pub struct RepartitionCost;

impl RepartitionCost {
    /// Rate at which IVP moves pages (GiB of IV per second), calibrated so the
    /// paper's dataset takes around 4 minutes.
    pub const IVP_GIBS_PER_SECOND: f64 = 0.18;
    /// Rate at which PP rebuilds columns (GiB of encoded table per second),
    /// calibrated so the paper's dataset takes around 18 minutes.
    pub const PP_GIBS_PER_SECOND: f64 = 0.05;

    /// Seconds needed to (re)partition a table's index vectors with IVP.
    pub fn ivp_seconds(table: &TableSpec) -> f64 {
        let iv_bytes: u64 = table.columns.iter().map(|c| c.iv_bytes()).sum();
        iv_bytes as f64 / (1u64 << 30) as f64 / Self::IVP_GIBS_PER_SECOND
    }

    /// Seconds needed to physically repartition a table.
    pub fn pp_seconds(table: &TableSpec) -> f64 {
        table.total_bytes() as f64 / (1u64 << 30) as f64 / Self::PP_GIBS_PER_SECOND
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numascan_numasim::Topology;

    fn machine() -> Machine {
        Machine::new(Topology::four_socket_ivybridge_ex())
    }

    fn table_spec(columns: usize, rows: u64) -> TableSpec {
        let cols = (0..columns)
            .map(|i| {
                ColumnSpec::integer_with_bitcase(
                    format!("col{i}"),
                    rows,
                    17 + (i % 10) as u8,
                    false,
                )
            })
            .collect();
        TableSpec::new("tbl", rows, cols)
    }

    #[test]
    fn strategy_labels_and_parts() {
        assert_eq!(PlacementStrategy::RoundRobin.label(), "RR");
        assert_eq!(PlacementStrategy::IndexVectorPartitioned { parts: 8 }.label(), "IVP8");
        assert_eq!(PlacementStrategy::PhysicallyPartitioned { parts: 4 }.label(), "PP4");
        assert_eq!(PlacementStrategy::RoundRobin.parts(), 1);
        assert_eq!(PlacementStrategy::IndexVectorPartitioned { parts: 8 }.parts(), 8);
    }

    #[test]
    fn rr_rotates_columns_over_sockets() {
        let mut m = machine();
        let spec = table_spec(8, 1_000_000);
        let placed = PlacedTable::place(&mut m, &spec, PlacementStrategy::RoundRobin).unwrap();
        let sockets: Vec<usize> =
            placed.columns.iter().map(|c| c.iv_segments[0].socket.index()).collect();
        assert_eq!(sockets, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        // Every component of a column is on the column's socket.
        for col in &placed.columns {
            assert_eq!(col.iv_segments.len(), 1);
            assert_eq!(col.iv_psm.majority_socket(), Some(col.iv_segments[0].socket));
            assert_eq!(col.dict_psm.majority_socket(), Some(col.iv_segments[0].socket));
        }
    }

    #[test]
    fn ivp_partitions_the_iv_and_interleaves_the_dictionary() {
        let mut m = machine();
        let spec = table_spec(2, 4_000_000);
        let placed = PlacedTable::place(
            &mut m,
            &spec,
            PlacementStrategy::IndexVectorPartitioned { parts: 4 },
        )
        .unwrap();
        let col = &placed.columns[0];
        assert_eq!(col.iv_segments.len(), 4);
        // Every socket holds exactly one IV part.
        let mut sockets = col.iv_sockets();
        sockets.sort();
        assert_eq!(sockets.len(), 4);
        // Rows are split evenly.
        let rows: Vec<u64> = col.iv_segments.iter().map(|s| s.rows.end - s.rows.start).collect();
        assert!(rows.iter().all(|r| *r == 1_000_000));
        // The dictionary is spread over all sockets.
        let dict_pages = col.dict_psm.pages_per_socket();
        assert!(
            dict_pages.iter().all(|p| *p > 0),
            "dictionary must be interleaved: {dict_pages:?}"
        );
        // Row -> socket lookup agrees with the segments.
        assert_eq!(col.iv_socket_of_row(0), col.iv_segments[0].socket);
        assert_eq!(col.iv_socket_of_row(3_999_999), col.iv_segments[3].socket);
    }

    #[test]
    fn pp_builds_self_contained_parts_with_duplicated_dictionaries() {
        let mut m = machine();
        // Low-cardinality column so that every part sees every value.
        let spec = TableSpec::new(
            "t",
            4_000_000,
            vec![ColumnSpec {
                name: "c".into(),
                rows: 4_000_000,
                distinct: 1 << 10,
                value_bytes: 8,
                with_index: true,
            }],
        );
        let placed = PlacedTable::place(
            &mut m,
            &spec,
            PlacementStrategy::PhysicallyPartitioned { parts: 4 },
        )
        .unwrap();
        let col = &placed.columns[0];
        assert_eq!(col.iv_segments.len(), 4);
        assert_eq!(col.dict_segments.len(), 4);
        assert_eq!(col.ix_segments.len(), 4);
        // Each part's components live on the part's socket.
        for (iv, dict) in col.iv_segments.iter().zip(&col.dict_segments) {
            assert_eq!(dict.location, ComponentLocation::Socket(iv.socket));
        }
        // Dictionary duplication: the summed part dictionaries exceed the
        // original dictionary several times over (every part sees every value),
        // and the column as a whole consumes more memory than unpartitioned.
        let part_dict_bytes: u64 = col.dict_segments.iter().map(|s| s.bytes).sum();
        assert!(part_dict_bytes >= 3 * col.spec.dict_bytes());
        assert!(col.memory_overhead_fraction() > 0.001, "{}", col.memory_overhead_fraction());
    }

    #[test]
    fn pp_memory_overhead_is_modest_for_the_paper_dataset_shape() {
        let mut m = machine();
        // bitcase-17 column with 100M rows split 4 ways: each part still sees
        // nearly every value, so dictionaries duplicate, but the dictionary is
        // small relative to the IV, giving a single-digit percentage overhead
        // (the paper reports ~8% for the whole dataset).
        let spec = table_spec(1, 100_000_000);
        let placed = PlacedTable::place(
            &mut m,
            &spec,
            PlacementStrategy::PhysicallyPartitioned { parts: 4 },
        )
        .unwrap();
        let overhead = placed.columns[0].memory_overhead_fraction();
        assert!(overhead > 0.0 && overhead < 0.25, "overhead {overhead}");
    }

    #[test]
    fn move_column_relocates_every_component() {
        let mut m = machine();
        let spec = ColumnSpec::integer_with_bitcase("c", 1_000_000, 18, true);
        let mut col = place_column_rr(&mut m, &spec, SocketId(0)).unwrap();
        move_column_to(&mut m, &mut col, SocketId(3)).unwrap();
        assert_eq!(col.iv_psm.majority_socket(), Some(SocketId(3)));
        assert_eq!(col.dict_psm.majority_socket(), Some(SocketId(3)));
        assert_eq!(col.ix_psm.as_ref().unwrap().majority_socket(), Some(SocketId(3)));
        assert_eq!(col.iv_segments[0].socket, SocketId(3));
    }

    #[test]
    fn repartition_ivp_spreads_an_rr_column() {
        let mut m = machine();
        let spec = ColumnSpec::integer_with_bitcase("c", 8_000_000, 20, false);
        let mut col = place_column_rr(&mut m, &spec, SocketId(1)).unwrap();
        assert_eq!(col.iv_psm.participating_sockets().len(), 1);
        repartition_ivp(&mut m, &mut col, 0, 4).unwrap();
        assert_eq!(col.iv_segments.len(), 4);
        assert_eq!(col.iv_psm.participating_sockets().len(), 4);
        // Pages are spread roughly evenly.
        let pages = col.iv_psm.pages_per_socket();
        let max = *pages.iter().max().unwrap() as f64;
        let min = *pages.iter().min().unwrap() as f64;
        assert!(min / max > 0.8, "uneven IVP split: {pages:?}");
        assert_eq!(col.strategy, PlacementStrategy::IndexVectorPartitioned { parts: 4 });
        // The dictionary is now interleaved.
        assert!(col.dict_psm.participating_sockets().len() > 1);
    }

    #[test]
    fn repartition_costs_match_the_reported_magnitudes() {
        // The paper's dataset (100M rows, 160 columns): PP takes ~18 minutes,
        // IVP ~4 minutes.
        let spec = table_spec(160, 100_000_000);
        let ivp_minutes = RepartitionCost::ivp_seconds(&spec) / 60.0;
        let pp_minutes = RepartitionCost::pp_seconds(&spec) / 60.0;
        assert!(ivp_minutes > 1.0 && ivp_minutes < 10.0, "IVP minutes {ivp_minutes}");
        assert!(pp_minutes > 10.0 && pp_minutes < 40.0, "PP minutes {pp_minutes}");
        assert!(pp_minutes > 3.0 * ivp_minutes);
    }

    #[test]
    fn placement_respects_strategy_parts_cap() {
        let mut m = machine();
        let spec = table_spec(1, 1_000_000);
        // Asking for more IVP parts than sockets clamps to the socket count.
        let placed = PlacedTable::place(
            &mut m,
            &spec,
            PlacementStrategy::IndexVectorPartitioned { parts: 16 },
        )
        .unwrap();
        assert_eq!(placed.columns[0].iv_segments.len(), 4);
    }
}
