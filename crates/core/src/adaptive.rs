//! The adaptive data placer (Section 7, Figure 20).
//!
//! The paper's sensitivity analysis motivates a design that *adapts* data
//! placement to the workload instead of fixing it statically: hot data should
//! be partitioned only until CPU and memory-bandwidth utilization is balanced
//! across sockets, cold data should be consolidated again, and the kind of
//! partitioning (quick IVP vs. thorough PP) should follow the workload's
//! access pattern.
//!
//! [`AdaptiveDataPlacer::decide`] implements the flowchart of Figure 20:
//!
//! 1. If socket utilization is unbalanced, find the hottest socket and the
//!    hottest data item on it.
//!    * If that item does not dominate the socket's utilization, move it to
//!      the coldest socket.
//!    * If it does dominate, increase its number of partitions — with IVP if
//!      its tasks mostly scan the index vector, with PP otherwise — and place
//!      the new partition on the coldest socket.
//! 2. If utilization is balanced, look for partitioned data that has gone
//!    cold and decrease its number of partitions.
//! 3. Still balanced and nothing to consolidate: advise per-part storage
//!    *layouts*. Parts whose vid stream is long-run (sorted or clustered
//!    data) and cold are re-encoded run-length (RLE) to shrink their memory
//!    and scan footprint; hot short-run parts stuck on RLE go back to the
//!    bit-packed layout the SWAR kernels scan fastest.

use numascan_numasim::{Machine, Result, SocketId, Topology};
use numascan_storage::IvLayoutKind;

use crate::catalog::Catalog;
use crate::placement::{move_column_to, place_column_pp, repartition_ivp, PlacementStrategy};
use crate::query::ColumnRef;
use crate::sim::SimReport;

/// Storage-layout statistics of one placement part, as observed by the
/// engine: which physical index-vector layout the part currently uses and
/// how run-length-friendly its vid stream is.
#[derive(Debug, Clone, PartialEq)]
pub struct PartLayoutStat {
    /// The part's current index-vector layout.
    pub layout: IvLayoutKind,
    /// Runs per row of the part's vid stream (1.0 = every row starts a new
    /// run, i.e. RLE-hostile; near 0.0 = long sorted runs, RLE-friendly).
    pub run_fraction: f64,
    /// Rows in the part.
    pub rows: usize,
}

/// Per-column workload statistics the placer bases its decisions on.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnHeat {
    /// Which column.
    pub column: ColumnRef,
    /// The socket serving most of the column's traffic.
    pub primary_socket: SocketId,
    /// The column's share of the machine-wide traffic (0.0 ..= 1.0). For
    /// engines that run aggregation pipelines, the share counts the fused
    /// paths' gather traffic as well as scan traffic.
    pub heat: f64,
    /// Gather bytes fused aggregation pipelines read from the column this
    /// epoch (value/group columns of Q1-class statements). Already folded
    /// into `heat`; carried separately so placers can tell aggregation load
    /// from scan load.
    pub agg_bytes: u64,
    /// Whether the column's tasks mostly scan the index vector (IVP is then
    /// the appropriate partitioning) rather than doing index lookups or
    /// heavy materialization (PP).
    pub iv_intensive: bool,
    /// Current number of partitions of the column.
    pub partitions: usize,
    /// Whether any active tasks touched the column recently.
    pub active: bool,
    /// Per-part layout statistics, in part order. Engines that do not track
    /// physical layouts (the simulator) leave this empty, which disables the
    /// layout advisor for the column.
    pub part_layouts: Vec<PartLayoutStat>,
}

/// Tunables of the adaptive data placer.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacerConfig {
    /// Utilization spread (max - min, as a fraction of capacity) above which
    /// the sockets are considered unbalanced.
    pub imbalance_threshold: f64,
    /// Fraction of the hottest socket's utilization above which the hottest
    /// item is considered to *dominate* the socket (and is partitioned rather
    /// than moved).
    pub domination_threshold: f64,
    /// Upper bound on the number of partitions (usually the socket count).
    pub max_partitions: usize,
    /// Run fraction (runs per row) at or below which a part's vid stream is
    /// considered RLE-friendly: a cold bit-packed part below the threshold is
    /// re-encoded run-length, and a hot RLE part above it is unpacked back to
    /// the bit-packed layout. 1/8 means runs average at least eight rows, so
    /// the two u32 vectors of the RLE form undercut even a 32-bit bitcase.
    pub rle_run_fraction: f64,
}

impl Default for PlacerConfig {
    fn default() -> Self {
        PlacerConfig {
            imbalance_threshold: 0.25,
            domination_threshold: 0.5,
            max_partitions: 64,
            rle_run_fraction: 0.125,
        }
    }
}

/// The action the placer decided to take.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacerAction {
    /// Utilization is balanced and nothing is cold: leave everything alone.
    None,
    /// Move a whole column to a (colder) socket.
    MoveColumn {
        /// The column to move.
        column: ColumnRef,
        /// The destination socket.
        to: SocketId,
    },
    /// Increase the column's IV partitioning.
    RepartitionIvp {
        /// The column to repartition.
        column: ColumnRef,
        /// The new number of partitions.
        parts: usize,
    },
    /// Physically repartition the column.
    RepartitionPp {
        /// The column to repartition.
        column: ColumnRef,
        /// The new number of partitions.
        parts: usize,
    },
    /// Decrease the partitioning of a column that went cold.
    DecreasePartitions {
        /// The column to consolidate.
        column: ColumnRef,
        /// The new (smaller) number of partitions.
        parts: usize,
    },
    /// Re-encode one placement part of a column into a different physical
    /// index-vector layout (hybrid per-partition storage): cold long-run
    /// parts compress to RLE, hot short-run parts unpack to bit-packed.
    Relayout {
        /// The column whose part is re-encoded.
        column: ColumnRef,
        /// Part index within the column's placement.
        part: usize,
        /// The layout the part switches to.
        layout: IvLayoutKind,
    },
}

/// The adaptive data placer.
#[derive(Debug, Clone, Default)]
pub struct AdaptiveDataPlacer {
    config: PlacerConfig,
}

impl AdaptiveDataPlacer {
    /// Creates a placer with the given tunables.
    pub fn new(config: PlacerConfig) -> Self {
        AdaptiveDataPlacer { config }
    }

    /// The placer's configuration.
    pub fn config(&self) -> &PlacerConfig {
        &self.config
    }

    /// Derives per-socket utilization (0.0 ..= 1.0) from a simulation report:
    /// the measured memory throughput of each socket relative to its local
    /// bandwidth.
    pub fn utilization_from_report(report: &SimReport, topology: &Topology) -> Vec<f64> {
        report
            .memory_throughput_gibs()
            .iter()
            .map(|tp| (tp / topology.socket.local_bandwidth_gibs).min(1.0))
            .collect()
    }

    /// Derives per-column heat statistics from a simulation report's
    /// per-column traffic accounting, so the placer can be driven directly by
    /// measured workload behaviour (the "performance metrics assigned to
    /// tasks" of Figure 20).
    pub fn heats_from_report(report: &SimReport, catalog: &Catalog) -> Vec<ColumnHeat> {
        let total: f64 = report.column_traffic.iter().map(|t| t.total_bytes()).sum();
        report
            .column_traffic
            .iter()
            .map(|traffic| {
                let column = catalog.column(traffic.column);
                let primary_socket =
                    column.iv_psm.majority_socket().unwrap_or(numascan_numasim::SocketId(0));
                ColumnHeat {
                    column: traffic.column,
                    primary_socket,
                    heat: if total > 0.0 { traffic.total_bytes() / total } else { 0.0 },
                    // The simulator's traffic model has no fused aggregation
                    // pipelines; only the native engine reports gather bytes.
                    agg_bytes: 0,
                    iv_intensive: traffic.is_iv_intensive(),
                    partitions: column.iv_segments.len(),
                    active: traffic.queries > 0,
                    // The simulator models placement, not physical layouts.
                    part_layouts: Vec::new(),
                }
            })
            .collect()
    }

    /// One full step of the adaptive loop: derive utilization and heats from a
    /// measurement, decide, and apply the decision. Returns the action taken.
    pub fn rebalance_step(
        &self,
        machine: &mut Machine,
        catalog: &mut Catalog,
        report: &SimReport,
    ) -> Result<PlacerAction> {
        let utilization = Self::utilization_from_report(report, machine.topology());
        let heats = Self::heats_from_report(report, catalog);
        let action = self.decide(&utilization, &heats);
        self.apply(machine, catalog, &action)?;
        Ok(action)
    }

    /// Runs one step of the Figure 20 flowchart and returns the decision.
    pub fn decide(&self, utilization: &[f64], heats: &[ColumnHeat]) -> PlacerAction {
        if utilization.is_empty() {
            return PlacerAction::None;
        }
        // `total_cmp`, not `partial_cmp().expect(...)`: a NaN smuggled in by
        // a degenerate telemetry epoch must yield a (possibly suboptimal)
        // decision, never a panic that unwinds through a cluster worker.
        let (hot_socket, &hot_util) = utilization
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty utilization");
        let (cold_socket, &cold_util) = utilization
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty utilization");

        if hot_util - cold_util > self.config.imbalance_threshold {
            // Unbalanced: act on the hottest item of the hottest socket.
            let hottest = heats
                .iter()
                .filter(|h| h.primary_socket.index() == hot_socket && h.active)
                .max_by(|a, b| a.heat.total_cmp(&b.heat));
            let Some(item) = hottest else { return PlacerAction::None };

            let socket_share = if hot_util > 0.0 {
                // The item's share of the hot socket's utilization: its heat is
                // machine-wide, so scale by the number of sockets.
                (item.heat * utilization.len() as f64 / hot_util).min(1.0)
            } else {
                0.0
            };
            if socket_share < self.config.domination_threshold {
                PlacerAction::MoveColumn { column: item.column, to: SocketId(cold_socket as u16) }
            } else {
                let parts = (item.partitions * 2).max(2).min(self.config.max_partitions.max(2));
                if item.iv_intensive {
                    PlacerAction::RepartitionIvp { column: item.column, parts }
                } else {
                    PlacerAction::RepartitionPp { column: item.column, parts }
                }
            }
        } else {
            // Balanced: consolidate partitioned data that went cold.
            for h in heats {
                if !h.active && h.partitions > 1 {
                    return PlacerAction::DecreasePartitions {
                        column: h.column,
                        parts: (h.partitions / 2).max(1),
                    };
                }
            }
            self.advise_layout(heats)
        }
    }

    /// The layout advisor (step 3 of the flowchart): with utilization
    /// balanced and nothing left to consolidate, pick the most valuable
    /// single-part layout change. Hot parts are fixed first — an RLE part
    /// whose runs are short scans slower than bit-packed, so unpacking it
    /// buys latency — then cold long-run bit-packed parts are compressed.
    fn advise_layout(&self, heats: &[ColumnHeat]) -> PlacerAction {
        let threshold = self.config.rle_run_fraction;
        // A hot part stuck on an RLE-hostile layout costs every scan; undo
        // it before spending effort compressing cold data.
        for h in heats.iter().filter(|h| h.active) {
            for (part, stat) in h.part_layouts.iter().enumerate() {
                if stat.layout == IvLayoutKind::Rle
                    && stat.run_fraction > threshold
                    && stat.rows > 0
                {
                    return PlacerAction::Relayout {
                        column: h.column,
                        part,
                        layout: IvLayoutKind::BitPacked,
                    };
                }
            }
        }
        for h in heats.iter().filter(|h| !h.active) {
            for (part, stat) in h.part_layouts.iter().enumerate() {
                if stat.layout == IvLayoutKind::BitPacked
                    && stat.run_fraction <= threshold
                    && stat.rows > 0
                {
                    return PlacerAction::Relayout {
                        column: h.column,
                        part,
                        layout: IvLayoutKind::Rle,
                    };
                }
            }
        }
        PlacerAction::None
    }

    /// Applies a decision to the catalog on the given machine.
    pub fn apply(
        &self,
        machine: &mut Machine,
        catalog: &mut Catalog,
        action: &PlacerAction,
    ) -> Result<()> {
        match action {
            PlacerAction::None => Ok(()),
            PlacerAction::MoveColumn { column, to } => {
                let col = catalog.column_mut(*column);
                move_column_to(machine, col, *to)
            }
            PlacerAction::RepartitionIvp { column, parts }
            | PlacerAction::DecreasePartitions { column, parts } => {
                let col = catalog.column_mut(*column);
                repartition_ivp(machine, col, column.column, *parts)
            }
            PlacerAction::RepartitionPp { column, parts } => {
                // Physical repartitioning rebuilds the column's components; we
                // re-place the column from its spec and swap it in. The old
                // allocation is released.
                let all_sockets: Vec<SocketId> = machine.topology().socket_ids().collect();
                let spec = catalog.column(*column).spec.clone();
                let old_ranges = catalog.column(*column).allocations.clone();
                for r in old_ranges {
                    machine.memory_mut().free(r)?;
                }
                let new_col = place_column_pp(machine, &spec, *parts, &all_sockets, column.column)?;
                *catalog.column_mut(*column) = new_col;
                catalog.table_mut(column.table).strategy =
                    PlacementStrategy::PhysicallyPartitioned { parts: *parts };
                Ok(())
            }
            // The simulated catalog tracks component sizes and placement,
            // not physical encodings — layout changes are a native-engine
            // concern ([`crate::native::NativeEngine::relayout_part`]).
            PlacerAction::Relayout { .. } => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{PlacedTable, PlacementStrategy};
    use crate::spec::{ColumnSpec, TableSpec};

    fn heats(
        primary: &[u16],
        heat: &[f64],
        parts: &[usize],
        active: &[bool],
        iv: bool,
    ) -> Vec<ColumnHeat> {
        primary
            .iter()
            .enumerate()
            .map(|(i, s)| ColumnHeat {
                column: ColumnRef { table: 0, column: i },
                primary_socket: SocketId(*s),
                heat: heat[i],
                agg_bytes: 0,
                iv_intensive: iv,
                partitions: parts[i],
                active: active[i],
                part_layouts: Vec::new(),
            })
            .collect()
    }

    fn layout_stat(layout: IvLayoutKind, run_fraction: f64) -> PartLayoutStat {
        PartLayoutStat { layout, run_fraction, rows: 10_000 }
    }

    #[test]
    fn balanced_utilization_with_hot_data_does_nothing() {
        let placer = AdaptiveDataPlacer::default();
        let action = placer.decide(
            &[0.8, 0.8, 0.79, 0.81],
            &heats(&[0, 1, 2, 3], &[0.25, 0.25, 0.25, 0.25], &[1, 1, 1, 1], &[true; 4], true),
        );
        assert_eq!(action, PlacerAction::None);
    }

    #[test]
    fn non_dominating_hot_item_is_moved_to_the_coldest_socket() {
        let placer = AdaptiveDataPlacer::default();
        // Socket 0 is hot because of many moderately warm columns.
        let action = placer.decide(
            &[0.9, 0.2, 0.1, 0.1],
            &heats(
                &[0, 0, 0, 0, 1],
                &[0.06, 0.05, 0.05, 0.05, 0.05],
                &[1, 1, 1, 1, 1],
                &[true; 5],
                true,
            ),
        );
        match action {
            PlacerAction::MoveColumn { to, .. } => assert_eq!(to, SocketId(2).min(SocketId(3))),
            other => panic!("expected a move, got {other:?}"),
        }
    }

    #[test]
    fn dominating_iv_intensive_item_is_partitioned_with_ivp() {
        let placer = AdaptiveDataPlacer::default();
        let action = placer.decide(
            &[0.9, 0.2, 0.1, 0.1],
            &heats(&[0, 1], &[0.2, 0.05], &[1, 1], &[true, true], true),
        );
        match action {
            PlacerAction::RepartitionIvp { parts, .. } => assert_eq!(parts, 2),
            other => panic!("expected IVP repartitioning, got {other:?}"),
        }
    }

    #[test]
    fn dominating_materialization_heavy_item_is_partitioned_with_pp() {
        let placer = AdaptiveDataPlacer::default();
        let action = placer.decide(
            &[0.9, 0.2, 0.1, 0.1],
            &heats(&[0, 1], &[0.2, 0.05], &[1, 1], &[true, true], false),
        );
        assert!(matches!(action, PlacerAction::RepartitionPp { parts: 2, .. }));
    }

    #[test]
    fn cold_partitioned_data_is_consolidated_when_balanced() {
        let placer = AdaptiveDataPlacer::default();
        let action = placer.decide(
            &[0.3, 0.3, 0.3, 0.3],
            &heats(&[0, 1], &[0.0, 0.2], &[4, 1], &[false, true], true),
        );
        assert_eq!(
            action,
            PlacerAction::DecreasePartitions {
                column: ColumnRef { table: 0, column: 0 },
                parts: 2
            }
        );
    }

    #[test]
    fn cold_long_run_parts_are_advised_onto_rle() {
        let placer = AdaptiveDataPlacer::default();
        let mut heats = heats(&[0, 1], &[0.0, 0.2], &[1, 1], &[false, true], true);
        // The cold column's second part is sorted (one run per ~100 rows);
        // partitions stay at 1 so consolidation does not preempt the advice.
        heats[0].part_layouts = vec![
            layout_stat(IvLayoutKind::BitPacked, 0.9),
            layout_stat(IvLayoutKind::BitPacked, 0.01),
        ];
        let action = placer.decide(&[0.3, 0.3, 0.3, 0.3], &heats);
        assert_eq!(
            action,
            PlacerAction::Relayout {
                column: ColumnRef { table: 0, column: 0 },
                part: 1,
                layout: IvLayoutKind::Rle,
            }
        );
    }

    #[test]
    fn hot_short_run_rle_parts_are_unpacked_first() {
        let placer = AdaptiveDataPlacer::default();
        let mut heats = heats(&[0, 1], &[0.0, 0.2], &[1, 1], &[false, true], true);
        // A cold RLE candidate exists, but the hot column is misencoded:
        // fixing the hot part takes priority.
        heats[0].part_layouts = vec![layout_stat(IvLayoutKind::BitPacked, 0.01)];
        heats[1].part_layouts = vec![layout_stat(IvLayoutKind::Rle, 0.95)];
        let action = placer.decide(&[0.3, 0.3, 0.3, 0.3], &heats);
        assert_eq!(
            action,
            PlacerAction::Relayout {
                column: ColumnRef { table: 0, column: 1 },
                part: 0,
                layout: IvLayoutKind::BitPacked,
            }
        );
    }

    #[test]
    fn short_run_cold_parts_keep_the_bitpacked_layout() {
        // Random (run-hostile) cold data must not be compressed, and columns
        // without layout telemetry never trigger the advisor.
        let placer = AdaptiveDataPlacer::default();
        let mut heats = heats(&[0, 1], &[0.0, 0.2], &[1, 1], &[false, true], true);
        heats[0].part_layouts = vec![layout_stat(IvLayoutKind::BitPacked, 0.9)];
        assert_eq!(placer.decide(&[0.3, 0.3, 0.3, 0.3], &heats), PlacerAction::None);
        heats[0].part_layouts = Vec::new();
        assert_eq!(placer.decide(&[0.3, 0.3, 0.3, 0.3], &heats), PlacerAction::None);
    }

    #[test]
    fn consolidation_outranks_layout_advice() {
        // A cold partitioned column is consolidated before any relayout.
        let placer = AdaptiveDataPlacer::default();
        let mut heats = heats(&[0, 1], &[0.0, 0.2], &[4, 1], &[false, true], true);
        heats[0].part_layouts = vec![layout_stat(IvLayoutKind::BitPacked, 0.01)];
        assert!(matches!(
            placer.decide(&[0.3, 0.3, 0.3, 0.3], &heats),
            PlacerAction::DecreasePartitions { .. }
        ));
    }

    #[test]
    fn partition_count_is_capped() {
        let placer =
            AdaptiveDataPlacer::new(PlacerConfig { max_partitions: 4, ..Default::default() });
        let action =
            placer.decide(&[0.9, 0.1, 0.1, 0.1], &heats(&[0], &[0.3], &[4], &[true], true));
        assert!(matches!(action, PlacerAction::RepartitionIvp { parts: 4, .. }));
    }

    #[test]
    fn apply_move_and_ivp_actions_update_the_catalog() {
        use numascan_numasim::Topology;
        let mut machine = Machine::new(Topology::four_socket_ivybridge_ex());
        let spec = TableSpec::new(
            "t",
            4_000_000,
            vec![ColumnSpec::integer_with_bitcase("hot", 4_000_000, 20, false)],
        );
        let table = PlacedTable::place(&mut machine, &spec, PlacementStrategy::RoundRobin).unwrap();
        let mut catalog = Catalog::new();
        catalog.add_table(table);
        let placer = AdaptiveDataPlacer::default();
        let column = ColumnRef { table: 0, column: 0 };

        placer
            .apply(
                &mut machine,
                &mut catalog,
                &PlacerAction::MoveColumn { column, to: SocketId(2) },
            )
            .unwrap();
        assert_eq!(catalog.column(column).iv_psm.majority_socket(), Some(SocketId(2)));

        placer
            .apply(&mut machine, &mut catalog, &PlacerAction::RepartitionIvp { column, parts: 4 })
            .unwrap();
        assert_eq!(catalog.column(column).iv_segments.len(), 4);

        placer
            .apply(&mut machine, &mut catalog, &PlacerAction::RepartitionPp { column, parts: 2 })
            .unwrap();
        assert_eq!(catalog.column(column).dict_segments.len(), 2);
    }

    #[test]
    fn utilization_derivation_uses_local_bandwidth() {
        use numascan_numasim::{HwCounters, Topology};
        let topology = Topology::four_socket_ivybridge_ex();
        let mut counters = HwCounters::new(&topology);
        counters.elapsed_seconds = 1.0;
        counters.record_access(SocketId(0), SocketId(0), 32.5 * (1u64 << 30) as f64, 0.0, 0.0);
        let report = SimReport {
            completed_queries: 0,
            elapsed_seconds: 1.0,
            throughput_qpm: 0.0,
            latency: crate::sim::LatencyStats::from_latencies_seconds(&[]),
            latencies_seconds: vec![],
            counters,
            scheduler: numascan_scheduler::SchedulerStats::new(4),
            column_traffic: vec![],
        };
        let util = AdaptiveDataPlacer::utilization_from_report(&report, &topology);
        assert!((util[0] - 0.5).abs() < 1e-9);
        assert_eq!(util[1], 0.0);
    }

    #[test]
    fn closed_loop_rebalance_partitions_a_measured_hotspot() {
        use crate::query::{FixedQueryGenerator, QuerySpec};
        use crate::sim::{SimConfig, SimEngine};
        use numascan_numasim::Topology;
        use numascan_scheduler::SchedulingStrategy;

        let topology = Topology::four_socket_ivybridge_ex();
        let mut machine = Machine::new(topology);
        let spec = TableSpec::new(
            "t",
            2_000_000,
            (0..4)
                .map(|i| ColumnSpec::integer_with_bitcase(format!("c{i}"), 2_000_000, 20, false))
                .collect(),
        );
        let table = PlacedTable::place(&mut machine, &spec, PlacementStrategy::RoundRobin).unwrap();
        let mut catalog = Catalog::new();
        catalog.add_table(table);

        // Every client hammers column 1: a measured hotspot on one socket.
        let hot = ColumnRef { table: 0, column: 1 };
        let mut workload = FixedQueryGenerator::new(QuerySpec::scan(hot, 0.0001));
        let config = SimConfig {
            strategy: SchedulingStrategy::Bound,
            clients: 64,
            target_queries: 200,
            ..SimConfig::default()
        };
        let report = SimEngine::new(&mut machine, &catalog, config.clone()).run(&mut workload);

        // The report's traffic accounting identifies the hot column.
        assert_eq!(report.column_traffic[0].column, hot);
        assert!(report.column_traffic[0].is_iv_intensive());

        // One closed-loop rebalance step partitions it with IVP.
        let placer = AdaptiveDataPlacer::default();
        let action = placer.rebalance_step(&mut machine, &mut catalog, &report).unwrap();
        assert!(
            matches!(action, PlacerAction::RepartitionIvp { column, .. } if column == hot),
            "expected the hot column to be IVP-partitioned, got {action:?}"
        );
        assert!(catalog.column(hot).iv_segments.len() > 1);

        // After rebalancing, the same workload achieves higher throughput.
        let mut workload = FixedQueryGenerator::new(QuerySpec::scan(hot, 0.0001));
        let after = SimEngine::new(&mut machine, &catalog, config).run(&mut workload);
        assert!(
            after.throughput_qpm > report.throughput_qpm,
            "rebalancing should improve throughput: {} -> {}",
            report.throughput_qpm,
            after.throughput_qpm
        );
    }
}
