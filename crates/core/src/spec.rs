//! Metadata descriptions of tables and dictionary-encoded columns.
//!
//! The simulation engine reasons about paper-scale datasets (100 million rows,
//! 160 columns, ~100 GiB) without materialising them: a [`ColumnSpec`]
//! captures exactly the quantities the cost model and the placement layer
//! need — row count, number of distinct values (hence the bitcase), and the
//! derived sizes of the index vector, dictionary and inverted index.

use serde::{Deserialize, Serialize};

/// Metadata of one dictionary-encoded column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnSpec {
    /// Column name.
    pub name: String,
    /// Number of rows.
    pub rows: u64,
    /// Number of distinct values (dictionary entries).
    pub distinct: u64,
    /// Bytes of one decoded value (8 for the integer columns of the paper's
    /// dataset).
    pub value_bytes: u64,
    /// Whether an inverted index exists for the column.
    pub with_index: bool,
}

impl ColumnSpec {
    /// An integer column with `rows` rows whose dictionary has `2^bitcase`
    /// entries, mirroring how the paper's dataset fixes the bitcase of each
    /// column.
    pub fn integer_with_bitcase(
        name: impl Into<String>,
        rows: u64,
        bitcase: u8,
        with_index: bool,
    ) -> Self {
        assert!((1..=32).contains(&bitcase), "bitcase must be in 1..=32");
        ColumnSpec {
            name: name.into(),
            rows,
            distinct: 1u64 << bitcase.min(62),
            value_bytes: 8,
            with_index,
        }
    }

    /// The bitcase: bits per vid in the index vector.
    pub fn bitcase(&self) -> u8 {
        let max_vid = self.distinct.saturating_sub(1);
        if max_vid == 0 {
            1
        } else {
            (64 - max_vid.leading_zeros()) as u8
        }
    }

    /// Size of the bit-compressed index vector in bytes.
    pub fn iv_bytes(&self) -> u64 {
        (self.rows * self.bitcase() as u64).div_ceil(8)
    }

    /// Size of the dictionary in bytes.
    pub fn dict_bytes(&self) -> u64 {
        self.distinct * self.value_bytes
    }

    /// Size of the inverted index in bytes (zero when absent): one 4-byte
    /// position per row plus an 8-byte offset per distinct value.
    pub fn ix_bytes(&self) -> u64 {
        if self.with_index {
            self.rows * 4 + self.distinct * 8
        } else {
            0
        }
    }

    /// Total size of the column in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.iv_bytes() + self.dict_bytes() + self.ix_bytes()
    }

    /// Expected number of distinct values in a uniform random sample of
    /// `part_rows` of the column's rows. Used to estimate the dictionary
    /// duplication that physical partitioning causes (Section 6.2.3).
    pub fn expected_distinct_in(&self, part_rows: u64) -> u64 {
        if self.distinct == 0 || part_rows == 0 {
            return 0;
        }
        let d = self.distinct as f64;
        let n = part_rows as f64;
        // E[distinct] = D * (1 - (1 - 1/D)^n)
        let expected = d * (1.0 - (1.0 - 1.0 / d).powf(n));
        expected.round().max(1.0) as u64
    }
}

/// Metadata of a table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableSpec {
    /// Table name.
    pub name: String,
    /// Number of rows (identical for every column).
    pub rows: u64,
    /// The table's columns.
    pub columns: Vec<ColumnSpec>,
}

impl TableSpec {
    /// Creates a table spec, checking that every column has `rows` rows.
    pub fn new(name: impl Into<String>, rows: u64, columns: Vec<ColumnSpec>) -> Self {
        assert!(!columns.is_empty(), "a table needs at least one column");
        for c in &columns {
            assert_eq!(c.rows, rows, "column '{}' row count differs from the table's", c.name);
        }
        TableSpec { name: name.into(), rows, columns }
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Total size of the table in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.columns.iter().map(|c| c.total_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitcase_derives_from_distinct_count() {
        let c = ColumnSpec::integer_with_bitcase("c", 1000, 17, false);
        assert_eq!(c.distinct, 1 << 17);
        assert_eq!(c.bitcase(), 17);
        let c26 = ColumnSpec::integer_with_bitcase("c", 1000, 26, false);
        assert_eq!(c26.bitcase(), 26);
    }

    #[test]
    fn component_sizes_match_hand_computation() {
        let c = ColumnSpec::integer_with_bitcase("c", 100_000_000, 20, true);
        assert_eq!(c.iv_bytes(), 100_000_000 * 20 / 8);
        assert_eq!(c.dict_bytes(), (1u64 << 20) * 8);
        assert_eq!(c.ix_bytes(), 100_000_000 * 4 + (1u64 << 20) * 8);
        assert_eq!(c.total_bytes(), c.iv_bytes() + c.dict_bytes() + c.ix_bytes());
    }

    #[test]
    fn index_free_columns_have_no_ix_bytes() {
        let c = ColumnSpec::integer_with_bitcase("c", 1000, 17, false);
        assert_eq!(c.ix_bytes(), 0);
    }

    #[test]
    fn expected_distinct_saturates_at_the_dictionary_size() {
        let c = ColumnSpec::integer_with_bitcase("c", 100_000_000, 17, false);
        // A part much larger than the dictionary sees almost every value.
        let d = c.expected_distinct_in(25_000_000);
        assert!(d as f64 > 0.99 * c.distinct as f64);
        // A tiny part sees roughly one distinct value per row.
        let small = c.expected_distinct_in(100);
        assert!((95..=100).contains(&small));
        assert_eq!(c.expected_distinct_in(0), 0);
    }

    #[test]
    fn paper_dataset_is_roughly_100_gib() {
        // 100M rows, ID column + 160 columns with bitcases 17..=26: the flat
        // CSV is 100 GiB; the dictionary-encoded size is smaller but in the
        // tens of GiB.
        let mut columns = vec![ColumnSpec::integer_with_bitcase("id", 100_000_000, 27, false)];
        for i in 0..160 {
            let bitcase = 17 + (i % 10) as u8;
            columns.push(ColumnSpec::integer_with_bitcase(
                format!("col{i}"),
                100_000_000,
                bitcase,
                false,
            ));
        }
        let table = TableSpec::new("tbl", 100_000_000, columns);
        let gib = table.total_bytes() as f64 / (1u64 << 30) as f64;
        assert!(gib > 20.0 && gib < 120.0, "unexpected table size: {gib} GiB");
    }

    #[test]
    #[should_panic(expected = "row count differs")]
    fn mismatched_rows_are_rejected() {
        let a = ColumnSpec::integer_with_bitcase("a", 10, 17, false);
        let b = ColumnSpec::integer_with_bitcase("b", 20, 17, false);
        TableSpec::new("t", 10, vec![a, b]);
    }
}
