//! Cooperative shared scans: one sweep serves the whole waiting set.
//!
//! Under high concurrency every admitted statement sweeping its column
//! privately costs client-count× the memory traffic of one scan — exactly
//! what the paper's premise (scans should scale with *bandwidth*, not client
//! count) forbids. The fix, following the cooperative-scan line of work
//! referenced in PAPERS.md ("From Cooperative Scans to Predictive Buffer
//! Management"): keep one circular **sweep** per (column, placement
//! generation, part) in flight and let every new statement *attach* to it
//! instead of starting its own.
//!
//! The protocol, per part:
//!
//! * the first statement to arrive registers a sweep and receives a dispatch
//!   ticket; the engine submits one pool task (with the part's socket
//!   affinity) that will run the sweep;
//! * later statements attach to the registered sweep — mid-column joins are
//!   the point: a late query is activated at the next chunk boundary, covers
//!   the tail of the current pass, and the sweep keeps circling so the
//!   wrap-around pass serves the prefix the query missed; every query is
//!   served exactly the part's row count from its join point;
//! * each chunk is evaluated once for the *whole* waiting set through the
//!   batched SWAR kernel ([`numascan_storage::scan_positions_batch`]): the
//!   packed words are read from memory once regardless of how many queries
//!   are attached;
//! * a query detaches when it has been served the full part; when the last
//!   query detaches and no new one is pending at the chunk boundary, the
//!   sweep closes and removes itself from the registry.
//!
//! Because activation happens only at chunk boundaries, an active query's
//! next unserved row always equals the sweep cursor, so per-query trimming
//! is a prefix cut of the chunk's match list — results concatenate (sorted
//! by global chunk start) into exactly the ascending row order a private
//! scan produces, byte for byte.
//!
//! When a pool worker picks up a dispatch ticket it does not blindly run the
//! sweep that created the ticket: a **relevance policy** re-decides which of
//! the not-yet-claimed sweeps homed on the worker's socket serves the most
//! demand (waiting queries × remaining bytes), so freed tasks always sweep
//! where the waiting set is thickest while placement alignment is preserved.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use numascan_numasim::SocketId;
use numascan_storage::{
    materialize_positions, scan_positions_batch, ColumnId, DictColumn, EncodedPredicate, Table,
};
use parking_lot::{Condvar, Mutex};

/// When the engine routes a statement through the shared-scan executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharedScanMode {
    /// Never share: every statement sweeps privately (the pre-cooperative
    /// behaviour, and the baseline the release perf gate measures against).
    Off,
    /// Share exactly when the concurrency hint stops granting a statement
    /// intra-statement parallelism beyond one task per part — the regime
    /// where private sweeps only multiply memory traffic. Low-concurrency
    /// statements keep the private parallel path (and its deterministic
    /// telemetry replay) untouched.
    Auto,
    /// Always share, regardless of concurrency (used by tests and the
    /// `scan_sharing` experiment to measure the sharing machinery itself).
    Always,
}

/// Configuration of the shared-scan executor.
#[derive(Debug, Clone)]
pub struct SharedScanConfig {
    /// Sharing policy; [`SharedScanMode::Auto`] by default.
    pub mode: SharedScanMode,
    /// Rows per sweep chunk: the granularity of mid-column joins and of
    /// detach checks. Large enough that the per-chunk bookkeeping (two brief
    /// lock acquisitions) is noise, small enough that late arrivals start
    /// being served promptly.
    pub chunk_rows: usize,
}

impl Default for SharedScanConfig {
    fn default() -> Self {
        SharedScanConfig { mode: SharedScanMode::Auto, chunk_rows: 64 * 1024 }
    }
}

/// Counters describing the shared-scan executor's work so far.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SharedScanStats {
    /// Sweeps registered (one per (column, generation, part) that had no
    /// sweep in flight when a shared statement arrived).
    pub sweeps_started: u64,
    /// Per-part query attachments admitted by the executor.
    pub queries_attached: u64,
    /// Attachments that joined a sweep already registered by an earlier
    /// statement instead of starting their own.
    pub late_attaches: u64,
    /// Queries activated mid-column (their pass wraps around to cover the
    /// prefix the sweep had already passed).
    pub wraparound_joins: u64,
    /// Chunks evaluated (each one batched over the whole waiting set).
    pub chunks_swept: u64,
    /// Rows covered by evaluated chunks.
    pub rows_swept: u64,
    /// Index-vector bytes actually streamed by sweeps — compare with the
    /// demand-side telemetry (which counts one pass per statement) to see
    /// the amortization factor.
    pub bytes_swept: u64,
    /// Dispatch tickets that the relevance policy redirected to a more
    /// relevant sweep than the one whose registration created the ticket.
    pub relevance_redirects: u64,
    /// Attachments purged at a chunk boundary because their statement's
    /// deadline expired while it waited. The purged statement's rows stop
    /// being swept; every other attachment — and the sweep's completion
    /// accounting — is untouched.
    pub deadline_detaches: u64,
}

/// Identity of one sweep: a column part under one placement snapshot. The
/// generation is bumped on every placement change, so a sweep can never mix
/// rows from two different placements of the same column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct SweepKey {
    /// Column index in the table.
    pub column: usize,
    /// Placement generation the part belongs to.
    pub generation: u64,
    /// Part index within the column's placement.
    pub part: usize,
}

/// One chunk's share of a statement's result, deferred: the sweeper hands
/// out the chunk's match list (shared across every query that asked for it)
/// and the *client* trims and materializes on its own thread at
/// [`SharedCollector::wait`]. The sweeper's per-query cost per chunk is one
/// `Arc` clone — decode work never serializes behind the sweep.
pub(crate) struct ChunkRef {
    /// First global row of the chunk (keys the result ordering).
    global_start: usize,
    /// First column-coordinate row of the chunk (the trim origin).
    scan_lo: usize,
    /// Rows of the chunk this query asked for (a prefix; shorter than the
    /// chunk only on the query's final chunk of a pass).
    take: usize,
    /// Ascending match positions of the whole chunk, shared by every query
    /// whose predicate collapsed to this kernel lane.
    positions: Arc<Vec<u32>>,
    /// Keeps the scanned column alive until the client materializes.
    sweep: Arc<PartSweep>,
}

impl ChunkRef {
    /// This query's share of the chunk's match positions: ascending
    /// column-coordinate positions, prefix-cut to the rows the query asked
    /// for (the cut matters only on the query's final chunk of a pass).
    pub(crate) fn served_positions(&self) -> &[u32] {
        let cut = (self.scan_lo + self.take) as u32;
        let keep = self.positions.partition_point(|&p| p < cut);
        &self.positions[..keep]
    }

    /// The scanned column the positions index into (the physically rebuilt
    /// part column when there is one, the base column otherwise).
    pub(crate) fn column(&self) -> &DictColumn<i64> {
        self.sweep.column()
    }

    /// What to add to a [`ChunkRef::served_positions`] position to reach the
    /// global base-table row: zero for base-column sweeps (their coordinates
    /// *are* global rows), the part's global base for physically rebuilt
    /// parts (whose coordinates are part-local).
    pub(crate) fn global_row_offset(&self) -> usize {
        self.sweep.global_base - self.sweep.local_base
    }
}

/// Where one statement's shared results accumulate: chunk references are
/// pushed tagged with their global row start, and the issuing client blocks
/// until every attached part has fully served the statement.
pub(crate) struct SharedCollector {
    remaining: Mutex<usize>,
    done: Condvar,
    chunks: Mutex<Vec<ChunkRef>>,
    /// Set when the waiting statement's deadline expired: the waiter is gone,
    /// so sweeps purge this collector's attachments at their next chunk
    /// boundary instead of serving (and completing) them.
    cancelled: AtomicBool,
}

impl SharedCollector {
    /// A collector waiting on `parts` per-part completions.
    pub(crate) fn new(parts: usize) -> Self {
        SharedCollector {
            remaining: Mutex::new(parts),
            done: Condvar::new(),
            chunks: Mutex::new(Vec::new()),
            cancelled: AtomicBool::new(false),
        }
    }

    /// Whether the waiting statement gave up (deadline expiry).
    fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }

    /// Marks the collector abandoned, as deadline expiry does.
    #[cfg(test)]
    pub(crate) fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// Appends one chunk reference (no-op for chunks with no matches).
    fn push(&self, chunk: ChunkRef) {
        if !chunk.positions.is_empty() {
            self.chunks.lock().push(chunk);
        }
    }

    /// Marks one attached part as fully served.
    fn complete_part(&self) {
        let mut remaining = self.remaining.lock();
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until every part completed, then trims and materializes each
    /// chunk's positions in global row order. Chunk starts are unique per
    /// statement (parts partition the row space and chunks partition each
    /// pass), so sorting by start and concatenating reproduces the
    /// sequential scan order exactly.
    #[cfg(test)]
    pub(crate) fn wait(&self) -> Vec<i64> {
        self.wait_until(None).expect("waits without a deadline cannot expire")
    }

    /// [`SharedCollector::wait`] with an optional absolute deadline. Returns
    /// `None` exactly when the deadline expired first; the collector is then
    /// marked cancelled so every sweep it is attached to purges the
    /// attachment at its next chunk boundary.
    pub(crate) fn wait_until(&self, deadline: Option<Instant>) -> Option<Vec<i64>> {
        let chunks = self.wait_raw_until(deadline)?;
        let mut out = Vec::new();
        for chunk in chunks {
            // Ascending positions make the query's share a prefix cut.
            out.extend(materialize_positions(chunk.column(), chunk.served_positions()));
        }
        Some(out)
    }

    /// The raw form of [`SharedCollector::wait_until`]: blocks the same way
    /// but returns the served chunk references (sorted by global row start)
    /// instead of materializing them — the hook aggregate waiters fold the
    /// sweep's mask stream through, so one sweep serves scan and aggregate
    /// statements alike.
    pub(crate) fn wait_raw_until(&self, deadline: Option<Instant>) -> Option<Vec<ChunkRef>> {
        let mut remaining = self.remaining.lock();
        while *remaining > 0 {
            match deadline {
                None => self.done.wait(&mut remaining),
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        self.cancelled.store(true, Ordering::SeqCst);
                        return None;
                    }
                    let _ = self.done.wait_for(&mut remaining, deadline - now);
                }
            }
        }
        drop(remaining);
        let mut chunks = std::mem::take(&mut *self.chunks.lock());
        // Chunk starts are unique per statement (parts partition the row
        // space and chunks partition each pass), so this order is total.
        chunks.sort_unstable_by_key(|chunk| chunk.global_start);
        Some(chunks)
    }
}

/// One query attached to a sweep.
struct Attached {
    predicate: Arc<EncodedPredicate>,
    /// Rows served so far (the query detaches at `len`).
    served: usize,
    collector: Arc<SharedCollector>,
}

/// Mutable state of a sweep, guarded by the sweep's own lock (acquired
/// strictly *after* the registry lock where both are held).
struct SweepState {
    /// Next part-local row the sweep will serve; wraps at `len`.
    cursor: usize,
    /// Queries being served. Only the owning sweeper task mutates this.
    active: Vec<Attached>,
    /// Queries waiting for the next chunk boundary to activate.
    pending: Vec<Attached>,
    /// Set (under both locks) when the sweep removed itself from the
    /// registry; attachers can never observe it, it documents the protocol.
    closed: bool,
}

/// One circular sweep over one column part.
struct PartSweep {
    key: SweepKey,
    socket: SocketId,
    /// First global row of the part (keys the result ordering).
    global_base: usize,
    /// Base row in the scanned column's coordinate space: equals
    /// `global_base` for parts reading the base column, 0 for physically
    /// rebuilt parts.
    local_base: usize,
    /// Rows in the part (always > 0; empty parts are never registered).
    len: usize,
    /// Index-vector bytes one full pass streams (relevance scoring).
    pass_bytes: u64,
    table: Arc<Table>,
    column_id: ColumnId,
    /// Physically rebuilt part column, if any.
    data: Option<Arc<DictColumn<i64>>>,
    state: Mutex<SweepState>,
}

impl PartSweep {
    fn column(&self) -> &DictColumn<i64> {
        self.data.as_deref().unwrap_or_else(|| self.table.column(self.column_id))
    }
}

/// Everything the registry needs to attach a statement to one column part.
pub(crate) struct PartAttachSpec {
    /// Sweep identity: (column, placement generation, part index).
    pub key: SweepKey,
    /// Home socket of the part (dispatch tickets carry it).
    pub socket: SocketId,
    /// First global row of the part.
    pub global_base: usize,
    /// Base row in the scanned column's coordinates (0 for PP parts).
    pub local_base: usize,
    /// Rows in the part (must be > 0).
    pub len: usize,
    /// IV bytes of one full pass over the part.
    pub pass_bytes: u64,
    /// The table the part belongs to.
    pub table: Arc<Table>,
    /// The scanned column.
    pub column_id: ColumnId,
    /// Physically rebuilt part column, if any.
    pub data: Option<Arc<DictColumn<i64>>>,
}

/// A claim on one pool task: the engine submits a task with this socket's
/// affinity, and the task lets the relevance policy pick which unclaimed
/// same-socket sweep it runs. Tickets and unclaimed sweeps are created 1:1
/// under the registry lock, so every dispatched task finds work.
pub(crate) struct DispatchTicket {
    socket: SocketId,
}

/// Registered sweeps plus the unclaimed queue the relevance policy picks
/// from, guarded by one lock (acquired strictly *before* any sweep's state
/// lock where both are held).
struct RegistryInner {
    sweeps: HashMap<SweepKey, Arc<PartSweep>>,
    /// Keys of sweeps registered but not yet claimed by a dispatcher task,
    /// in registration order.
    unclaimed: Vec<SweepKey>,
}

/// The shared-scan registry: at most one sweep in flight per
/// (column, placement generation, part), with attach-or-start admission and
/// relevance-driven dispatch.
pub(crate) struct SharedScanRegistry {
    chunk_rows: usize,
    inner: Mutex<RegistryInner>,
    sweeps_started: AtomicU64,
    queries_attached: AtomicU64,
    late_attaches: AtomicU64,
    wraparound_joins: AtomicU64,
    chunks_swept: AtomicU64,
    rows_swept: AtomicU64,
    bytes_swept: AtomicU64,
    relevance_redirects: AtomicU64,
    deadline_detaches: AtomicU64,
}

impl SharedScanRegistry {
    /// An empty registry sweeping `chunk_rows` rows per chunk.
    pub(crate) fn new(chunk_rows: usize) -> Self {
        SharedScanRegistry {
            chunk_rows: chunk_rows.max(1),
            inner: Mutex::new(RegistryInner { sweeps: HashMap::new(), unclaimed: Vec::new() }),
            sweeps_started: AtomicU64::new(0),
            queries_attached: AtomicU64::new(0),
            late_attaches: AtomicU64::new(0),
            wraparound_joins: AtomicU64::new(0),
            chunks_swept: AtomicU64::new(0),
            rows_swept: AtomicU64::new(0),
            bytes_swept: AtomicU64::new(0),
            relevance_redirects: AtomicU64::new(0),
            deadline_detaches: AtomicU64::new(0),
        }
    }

    /// Snapshot of the executor's counters.
    pub(crate) fn stats(&self) -> SharedScanStats {
        SharedScanStats {
            sweeps_started: self.sweeps_started.load(Ordering::Relaxed),
            queries_attached: self.queries_attached.load(Ordering::Relaxed),
            late_attaches: self.late_attaches.load(Ordering::Relaxed),
            wraparound_joins: self.wraparound_joins.load(Ordering::Relaxed),
            chunks_swept: self.chunks_swept.load(Ordering::Relaxed),
            rows_swept: self.rows_swept.load(Ordering::Relaxed),
            bytes_swept: self.bytes_swept.load(Ordering::Relaxed),
            relevance_redirects: self.relevance_redirects.load(Ordering::Relaxed),
            deadline_detaches: self.deadline_detaches.load(Ordering::Relaxed),
        }
    }

    /// Attaches one statement's query to the part's sweep, registering a new
    /// sweep if none is in flight. Returns a dispatch ticket exactly when a
    /// sweep was registered — the caller must then submit one pool task (with
    /// the ticket's socket affinity) that calls
    /// [`SharedScanRegistry::dispatch`].
    pub(crate) fn attach(
        &self,
        spec: PartAttachSpec,
        predicate: Arc<EncodedPredicate>,
        collector: Arc<SharedCollector>,
    ) -> Option<DispatchTicket> {
        debug_assert!(spec.len > 0, "empty parts must not be attached");
        let attached = Attached { predicate, served: 0, collector };
        self.queries_attached.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        if let Some(sweep) = inner.sweeps.get(&spec.key) {
            // A sweep found under the registry lock cannot be closed: the
            // sweeper sets `closed` and removes the map entry in one critical
            // section of this same lock.
            let mut state = sweep.state.lock();
            debug_assert!(!state.closed);
            state.pending.push(attached);
            self.late_attaches.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let sweep = Arc::new(PartSweep {
            key: spec.key,
            socket: spec.socket,
            global_base: spec.global_base,
            local_base: spec.local_base,
            len: spec.len,
            pass_bytes: spec.pass_bytes,
            table: spec.table,
            column_id: spec.column_id,
            data: spec.data,
            state: Mutex::new(SweepState {
                cursor: 0,
                active: Vec::new(),
                pending: vec![attached],
                closed: false,
            }),
        });
        inner.sweeps.insert(spec.key, sweep);
        inner.unclaimed.push(spec.key);
        self.sweeps_started.fetch_add(1, Ordering::Relaxed);
        Some(DispatchTicket { socket: spec.socket })
    }

    /// Entry point of the pool task a ticket caused: the relevance policy
    /// claims the unclaimed sweep homed on the ticket's socket that serves
    /// the most demand (waiting queries × remaining pass bytes) and runs it
    /// to completion. Tickets map 1:1 to unclaimed sweeps per socket, so the
    /// claim always succeeds; ties keep registration order.
    pub(crate) fn dispatch(&self, ticket: DispatchTicket) {
        let sweep = {
            let mut inner = self.inner.lock();
            let mut best: Option<(usize, u128)> = None;
            for (position, key) in inner.unclaimed.iter().enumerate() {
                let sweep = &inner.sweeps[key];
                if sweep.socket != ticket.socket {
                    continue;
                }
                let waiting = {
                    let state = sweep.state.lock();
                    state.pending.len() + state.active.len()
                };
                let score = waiting as u128 * u128::from(sweep.pass_bytes);
                let better = match best {
                    None => true,
                    Some((_, best_score)) => score > best_score,
                };
                if better {
                    let redirected = best.is_some();
                    if redirected {
                        // A younger sweep outranked the queue head; note the
                        // redirect once per overtake decision.
                        self.relevance_redirects.fetch_add(1, Ordering::Relaxed);
                    }
                    best = Some((position, score));
                }
            }
            let Some((position, _)) = best else {
                // Unreachable under the 1:1 ticket invariant; tolerate it
                // rather than deadlock.
                debug_assert!(false, "dispatch ticket found no unclaimed sweep");
                return;
            };
            let key = inner.unclaimed.remove(position);
            Arc::clone(&inner.sweeps[&key])
        };
        self.run_sweep(&sweep);
    }

    /// The circular sweep loop: per chunk boundary, activate pending joiners
    /// (counting mid-column joins as wraparounds), close if nobody is
    /// waiting, otherwise evaluate the next chunk once for the whole active
    /// set and credit every query its prefix.
    fn run_sweep(&self, sweep: &Arc<PartSweep>) {
        let column = sweep.column();
        loop {
            // -------- chunk boundary: joins, detaches, close --------
            let (chunk, takes): (Range<usize>, Vec<usize>) = {
                let mut state = sweep.state.lock();
                if state.cursor == sweep.len {
                    state.cursor = 0;
                }
                // Deadline-expired statements detach here, at the chunk
                // boundary: their waiter is gone, so their attachments are
                // dropped without a `complete_part` — the per-collector
                // remaining count was never decremented for these parts, so
                // nothing underflows, and the remaining active set keeps its
                // served counts untouched.
                let waiting = state.active.len() + state.pending.len();
                state.active.retain(|attached| !attached.collector.is_cancelled());
                state.pending.retain(|attached| !attached.collector.is_cancelled());
                let detached = waiting - state.active.len() - state.pending.len();
                if detached > 0 {
                    self.deadline_detaches.fetch_add(detached as u64, Ordering::Relaxed);
                }
                if !state.pending.is_empty() {
                    if state.cursor != 0 {
                        self.wraparound_joins
                            .fetch_add(state.pending.len() as u64, Ordering::Relaxed);
                    }
                    let mut joiners = std::mem::take(&mut state.pending);
                    state.active.append(&mut joiners);
                }
                if state.active.is_empty() {
                    // Nobody waiting: close under registry-then-state order
                    // so attachers either find the sweep or a clean slot.
                    drop(state);
                    let mut inner = self.inner.lock();
                    let mut state = sweep.state.lock();
                    if state.active.is_empty() && state.pending.is_empty() {
                        state.closed = true;
                        inner.sweeps.remove(&sweep.key);
                        return;
                    }
                    continue;
                }
                let start = state.cursor;
                // Clamp the chunk to the longest remaining need so the final
                // chunk of a pass ends exactly at the last row any attached
                // query still wants — no row is swept that nobody asked for.
                let needed = state.active.iter().map(|a| sweep.len - a.served).max().unwrap_or(0);
                let end = (start + self.chunk_rows.min(needed)).min(sweep.len);
                state.cursor = end;
                let chunk_len = end - start;
                // Chunk-boundary activation means every active query's next
                // unserved row is exactly `start`; its share of this chunk is
                // a prefix (shorter than the chunk only on its final chunk).
                let takes =
                    state.active.iter().map(|a| (sweep.len - a.served).min(chunk_len)).collect();
                (start..end, takes)
            };

            // -------- evaluate the chunk once for the whole set --------
            let chunk_len = chunk.len();
            self.chunks_swept.fetch_add(1, Ordering::Relaxed);
            self.rows_swept.fetch_add(chunk_len as u64, Ordering::Relaxed);
            self.bytes_swept.fetch_add(column.iv_scan_bytes(chunk_len), Ordering::Relaxed);
            let scan_lo = sweep.local_base + chunk.start;
            let scan_hi = sweep.local_base + chunk.end;
            let (predicates, collectors): (Vec<Arc<EncodedPredicate>>, Vec<Arc<SharedCollector>>) = {
                // `active` is only mutated by this sweeper, so the snapshot
                // taken at the boundary stays index-aligned; re-locking here
                // only synchronizes with attachers touching `pending`.
                let state = sweep.state.lock();
                (
                    state.active.iter().map(|a| Arc::clone(&a.predicate)).collect(),
                    state.active.iter().map(|a| Arc::clone(&a.collector)).collect(),
                )
            };
            // A hot waiting set re-issues the same few statements over and
            // over; identical predicates collapse to one kernel lane and the
            // result fans out to every query that asked for it.
            let mut unique: Vec<&EncodedPredicate> = Vec::new();
            let mut slot_of: Vec<usize> = Vec::with_capacity(predicates.len());
            for predicate in &predicates {
                let p: &EncodedPredicate = predicate;
                let slot = unique.iter().position(|u| *u == p).unwrap_or_else(|| {
                    unique.push(p);
                    unique.len() - 1
                });
                slot_of.push(slot);
            }
            let matches: Vec<Arc<Vec<u32>>> =
                scan_positions_batch(column, scan_lo..scan_hi, &unique)
                    .into_iter()
                    .map(Arc::new)
                    .collect();
            // Hand every query a reference to its lane's match list; the
            // client trims and materializes at wait(), so fan-out here costs
            // one Arc clone per query no matter how wide the waiting set is.
            let global_start = sweep.global_base + chunk.start;
            for ((slot, take), collector) in slot_of.iter().zip(&takes).zip(&collectors) {
                collector.push(ChunkRef {
                    global_start,
                    scan_lo,
                    take: *take,
                    positions: Arc::clone(&matches[*slot]),
                    sweep: Arc::clone(sweep),
                });
            }

            // -------- credit served rows, detach completed queries --------
            let mut state = sweep.state.lock();
            for (attached, take) in state.active.iter_mut().zip(&takes) {
                attached.served += take;
            }
            state.active.retain(|attached| {
                debug_assert!(attached.served <= sweep.len);
                let done = attached.served >= sweep.len;
                if done {
                    attached.collector.complete_part();
                }
                !done
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numascan_storage::{Predicate, TableBuilder};

    fn test_table(rows: usize) -> Arc<Table> {
        let values: Vec<i64> = (0..rows as i64).map(|i| (i * 37) % 500).collect();
        Arc::new(TableBuilder::new("t").add_values("v", &values, false).build())
    }

    fn oracle(table: &Table, lo: i64, hi: i64) -> Vec<i64> {
        let (_, column) = table.column_by_name("v").unwrap();
        (0..column.row_count())
            .map(|p| *column.value_at(p))
            .filter(|v| (lo..=hi).contains(v))
            .collect()
    }

    fn spec_for(table: &Arc<Table>, key: SweepKey) -> PartAttachSpec {
        let (column_id, column) = table.column_by_name("v").unwrap();
        PartAttachSpec {
            key,
            socket: SocketId(0),
            global_base: 0,
            local_base: 0,
            len: column.row_count(),
            pass_bytes: column.iv_scan_bytes(column.row_count()),
            table: Arc::clone(table),
            column_id,
            data: None,
        }
    }

    fn attach_query(
        registry: &SharedScanRegistry,
        table: &Arc<Table>,
        key: SweepKey,
        lo: i64,
        hi: i64,
    ) -> (Arc<SharedCollector>, Option<DispatchTicket>) {
        let (_, column) = table.column_by_name("v").unwrap();
        let predicate = Arc::new(Predicate::Between { lo, hi }.encode(column.dictionary()));
        let collector = Arc::new(SharedCollector::new(1));
        let ticket = registry.attach(spec_for(table, key), predicate, Arc::clone(&collector));
        (collector, ticket)
    }

    #[test]
    fn a_single_sweep_serves_every_attached_query_exactly() {
        let table = test_table(10_000);
        let registry = SharedScanRegistry::new(512);
        let key = SweepKey { column: 0, generation: 0, part: 0 };
        let (first, ticket) = attach_query(&registry, &table, key, 100, 199);
        let ticket = ticket.expect("first attach registers the sweep");
        let (second, none) = attach_query(&registry, &table, key, 0, 499);
        assert!(none.is_none(), "later attaches join the registered sweep");
        registry.dispatch(ticket);
        assert_eq!(first.wait(), oracle(&table, 100, 199));
        assert_eq!(second.wait(), oracle(&table, 0, 499));
        let stats = registry.stats();
        assert_eq!(stats.sweeps_started, 1);
        assert_eq!(stats.queries_attached, 2);
        assert_eq!(stats.late_attaches, 1);
        assert_eq!(stats.wraparound_joins, 0, "both queries joined at row 0");
        // One pass of 10_000 rows in 512-row chunks, read once for both.
        assert_eq!(stats.rows_swept, 10_000);
        assert!(registry.inner.lock().sweeps.is_empty(), "the sweep must close after serving");
    }

    #[test]
    fn mid_column_joins_cover_the_tail_then_wrap_around() {
        let table = test_table(8_000);
        let registry = SharedScanRegistry::new(256);
        let key = SweepKey { column: 0, generation: 0, part: 0 };
        let (early, ticket) = attach_query(&registry, &table, key, 50, 120);
        let ticket = ticket.expect("first attach registers the sweep");
        // Simulate an in-flight sweep: advance the cursor to mid-column
        // before the joiners activate, as if earlier chunks had been served.
        {
            let inner = registry.inner.lock();
            inner.sweeps[&key].state.lock().cursor = 3_000;
        }
        let (late, none) = attach_query(&registry, &table, key, 200, 260);
        assert!(none.is_none());
        registry.dispatch(ticket);
        // Both queries activated at cursor 3_000, so both must have wrapped —
        // and their results must still come back in ascending row order.
        assert_eq!(early.wait(), oracle(&table, 50, 120));
        assert_eq!(late.wait(), oracle(&table, 200, 260));
        let stats = registry.stats();
        assert_eq!(stats.wraparound_joins, 2);
        // The circular pass covers tail + prefix exactly once per row.
        assert_eq!(stats.rows_swept, 8_000);
    }

    #[test]
    fn a_cancelled_attachment_is_purged_without_starving_the_rest() {
        let table = test_table(6_000);
        let registry = SharedScanRegistry::new(512);
        let key = SweepKey { column: 0, generation: 0, part: 0 };
        let (expired, ticket) = attach_query(&registry, &table, key, 100, 199);
        let ticket = ticket.expect("first attach registers the sweep");
        let (live, none) = attach_query(&registry, &table, key, 0, 499);
        assert!(none.is_none());
        // Simulate a deadline expiry before the sweep runs: the waiter gave
        // up, so the sweep must drop the attachment at its first boundary.
        expired.cancel();
        registry.dispatch(ticket);
        assert_eq!(live.wait(), oracle(&table, 0, 499));
        let stats = registry.stats();
        assert_eq!(stats.deadline_detaches, 1);
        assert_eq!(stats.rows_swept, 6_000, "the live query is still served a full pass");
        assert!(registry.inner.lock().sweeps.is_empty(), "the sweep must still close cleanly");
    }

    #[test]
    fn a_sweep_whose_every_waiter_expired_closes_without_work() {
        let table = test_table(4_000);
        let registry = SharedScanRegistry::new(256);
        let key = SweepKey { column: 0, generation: 0, part: 0 };
        let (gone, ticket) = attach_query(&registry, &table, key, 0, 99);
        gone.cancel();
        registry.dispatch(ticket.unwrap());
        let stats = registry.stats();
        assert_eq!(stats.deadline_detaches, 1);
        assert_eq!(stats.rows_swept, 0, "no chunk may be swept for an abandoned statement");
        assert!(registry.inner.lock().sweeps.is_empty());
    }

    #[test]
    fn relevance_policy_picks_the_thickest_waiting_set() {
        let table = test_table(4_000);
        let registry = SharedScanRegistry::new(1 << 20);
        let thin = SweepKey { column: 0, generation: 0, part: 0 };
        let thick = SweepKey { column: 0, generation: 0, part: 1 };
        let (thin_out, thin_ticket) = attach_query(&registry, &table, thin, 0, 10);
        let (thick_a, thick_ticket) = attach_query(&registry, &table, thick, 20, 30);
        let (thick_b, _) = attach_query(&registry, &table, thick, 40, 60);
        let (thick_c, _) = attach_query(&registry, &table, thick, 0, 499);
        // The first freed task redirects to the three-query sweep even though
        // the thin sweep registered first; the second serves the remainder.
        registry.dispatch(thin_ticket.unwrap());
        assert_eq!(thick_a.wait(), oracle(&table, 20, 30));
        assert_eq!(thick_b.wait(), oracle(&table, 40, 60));
        assert_eq!(thick_c.wait(), oracle(&table, 0, 499));
        assert!(registry.stats().relevance_redirects > 0);
        registry.dispatch(thick_ticket.unwrap());
        assert_eq!(thin_out.wait(), oracle(&table, 0, 10));
        assert!(registry.inner.lock().sweeps.is_empty());
    }
}
