//! Native execution of real scans on real threads.
//!
//! The simulation engine answers "what would this workload do on a 32-socket
//! server"; [`NativeEngine`] answers "run this query for real". It combines
//! the storage layer (`numascan-storage`) with the NUMA-aware thread pool
//! (`numascan-scheduler`): columns are assigned to (virtual) sockets
//! round-robin, scans are split into tasks according to the concurrency hint,
//! every task carries the affinity of its column, and the configured
//! scheduling strategy decides whether those affinities are soft or hard.

use std::sync::Arc;

use numascan_numasim::{SocketId, Topology};
use numascan_scheduler::{
    ConcurrencyHint, PoolConfig, SchedulerStats, SchedulingStrategy, TaskMeta, TaskPriority,
    ThreadPool, WorkClass,
};
use numascan_storage::{scan_positions_with_estimate, ColumnId, Predicate, Table};
use parking_lot::Mutex;

/// Per-task output: the task's chunk index and the values it materialized.
type TaskChunks = Vec<(usize, Vec<i64>)>;

/// A column-store engine executing real scans on real worker threads.
pub struct NativeEngine {
    table: Arc<Table>,
    pool: ThreadPool,
    hint: ConcurrencyHint,
    column_sockets: Vec<SocketId>,
    statement_epoch: std::sync::atomic::AtomicU64,
}

impl NativeEngine {
    /// Creates an engine for `table` on a machine shaped like `topology`,
    /// scheduling with `strategy`.
    pub fn new(table: Table, topology: &Topology, strategy: SchedulingStrategy) -> Self {
        let sockets = topology.socket_count();
        let column_sockets =
            (0..table.column_count()).map(|c| SocketId((c % sockets) as u16)).collect();
        let pool = ThreadPool::new(topology, PoolConfig { strategy, ..PoolConfig::default() });
        NativeEngine {
            table: Arc::new(table),
            pool,
            hint: ConcurrencyHint::new(topology.total_contexts()),
            column_sockets,
            statement_epoch: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The table the engine serves.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The (virtual) socket a column is assigned to.
    pub fn column_socket(&self, column: ColumnId) -> SocketId {
        self.column_sockets[column.index()]
    }

    /// Executes `SELECT col FROM t WHERE col BETWEEN lo AND hi` and returns
    /// the materialized values. `active_statements` feeds the concurrency
    /// hint (pass the number of concurrent queries in flight).
    pub fn scan_between(
        &self,
        column_name: &str,
        lo: i64,
        hi: i64,
        active_statements: usize,
    ) -> Option<Vec<i64>> {
        let (column_id, column) = self.table.column_by_name(column_name)?;
        let predicate = Predicate::Between { lo, hi };
        let encoded = predicate.encode(column.dictionary());
        // Computed once per statement and shipped to every task, so each
        // scan's position list is allocated at its final size up front.
        let selectivity = predicate.estimated_selectivity(column.dictionary());
        let socket = self.column_socket(column_id);
        let epoch = self.statement_epoch.fetch_add(1, std::sync::atomic::Ordering::SeqCst);

        let tasks = self.hint.suggested_tasks(active_statements).min(column.row_count().max(1));
        let rows_per_task = column.row_count().div_ceil(tasks.max(1));
        let results: Arc<Mutex<TaskChunks>> = Arc::new(Mutex::new(Vec::new()));

        for (i, start) in (0..column.row_count()).step_by(rows_per_task.max(1)).enumerate() {
            let end = (start + rows_per_task).min(column.row_count());
            let table = Arc::clone(&self.table);
            let results = Arc::clone(&results);
            let encoded = encoded.clone();
            let meta = TaskMeta {
                affinity: Some(socket),
                hard_affinity: false,
                priority: TaskPriority::new(epoch, i as u64),
                work_class: WorkClass::MemoryIntensive,
                estimated_bytes: ((end - start) as f64) * column.bitcase() as f64 / 8.0,
            };
            self.pool.submit(meta, move || {
                let column = table.column(column_id);
                let positions =
                    scan_positions_with_estimate(column, start..end, &encoded, selectivity);
                let values = numascan_storage::materialize_positions(column, &positions);
                results.lock().push((i, values));
            });
        }
        self.pool.wait_idle();

        let mut chunks = Arc::try_unwrap(results)
            .map(|m| m.into_inner())
            .unwrap_or_else(|arc| arc.lock().clone());
        chunks.sort_by_key(|(i, _)| *i);
        Some(chunks.into_iter().flat_map(|(_, v)| v).collect())
    }

    /// Counts the rows matching `col BETWEEN lo AND hi`.
    pub fn count_between(
        &self,
        column_name: &str,
        lo: i64,
        hi: i64,
        active_statements: usize,
    ) -> Option<usize> {
        self.scan_between(column_name, lo, hi, active_statements).map(|v| v.len())
    }

    /// Scheduler statistics accumulated so far, including the wakeup-routing
    /// counters: `targeted_wakeups`/`chained_wakeups` show the per-group
    /// condvar routing at work, and `watchdog_wakeups` stays at zero as long
    /// as no wakeup had to be rescued by the watchdog backstop.
    pub fn scheduler_stats(&self) -> SchedulerStats {
        self.pool.stats()
    }

    /// Shuts the engine down, joining its worker threads.
    pub fn shutdown(self) {
        self.pool.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numascan_storage::TableBuilder;

    fn table(rows: usize) -> Table {
        let values: Vec<i64> = (0..rows as i64).map(|i| (i * 7919) % 1000).collect();
        let ids: Vec<i64> = (0..rows as i64).collect();
        TableBuilder::new("tbl")
            .add_values("id", &ids, false)
            .add_values("payload", &values, false)
            .build()
    }

    fn small_topology() -> Topology {
        Topology::four_socket_ivybridge_ex()
    }

    #[test]
    fn native_scan_returns_exactly_the_matching_values() {
        let rows = 100_000;
        let engine = NativeEngine::new(table(rows), &small_topology(), SchedulingStrategy::Bound);
        let values = engine.scan_between("payload", 100, 199, 1).unwrap();
        // Reference computation.
        let expected =
            (0..rows as i64).filter(|i| (100..=199).contains(&((i * 7919) % 1000))).count();
        assert_eq!(values.len(), expected);
        assert!(values.iter().all(|v| (100..=199).contains(v)));
        engine.shutdown();
    }

    #[test]
    fn concurrency_hint_controls_task_granularity() {
        let engine = NativeEngine::new(table(50_000), &small_topology(), SchedulingStrategy::Bound);
        // Low concurrency: many tasks per query.
        engine.count_between("payload", 0, 999, 1).unwrap();
        let low_tasks = engine.scheduler_stats().executed;
        // High concurrency: a single task.
        engine.count_between("payload", 0, 999, 10_000).unwrap();
        let delta = engine.scheduler_stats().executed - low_tasks;
        assert!(
            low_tasks > delta,
            "low concurrency should produce more tasks ({low_tasks} vs {delta})"
        );
        assert_eq!(delta, 1);
        engine.shutdown();
    }

    #[test]
    fn scans_are_dispatched_by_targeted_wakeups() {
        let engine = NativeEngine::new(table(50_000), &small_topology(), SchedulingStrategy::Bound);
        for _ in 0..5 {
            engine.count_between("payload", 0, 499, 1).unwrap();
        }
        let stats = engine.scheduler_stats();
        assert!(stats.executed > 0);
        // Workers sleep between queries, so the submit path must have routed
        // wakeups; the watchdog backstop must not have been needed.
        assert!(stats.targeted_wakeups > 0, "no targeted wakeups recorded: {stats:?}");
        assert_eq!(stats.watchdog_wakeups, 0, "watchdog had to rescue a task: {stats:?}");
        engine.shutdown();
    }

    #[test]
    fn unknown_columns_return_none() {
        let engine = NativeEngine::new(table(1_000), &small_topology(), SchedulingStrategy::Target);
        assert!(engine.scan_between("nope", 0, 1, 1).is_none());
        engine.shutdown();
    }

    #[test]
    fn full_range_scan_returns_every_row() {
        let rows = 20_000;
        let engine = NativeEngine::new(table(rows), &small_topology(), SchedulingStrategy::Os);
        let count = engine.count_between("id", 0, rows as i64, 4).unwrap();
        assert_eq!(count, rows);
        engine.shutdown();
    }
}
