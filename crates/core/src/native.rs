//! Native execution of real scans on real threads.
//!
//! The simulation engine answers "what would this workload do on a 32-socket
//! server"; [`NativeEngine`] answers "run this query for real". It combines
//! the storage layer (`numascan-storage`) with the NUMA-aware thread pool
//! (`numascan-scheduler`): every column carries a *placement* — a list of
//! row-range parts, each assigned to a (virtual) socket — scans are split
//! into tasks according to the concurrency hint *aligned to that placement*
//! (each task's range falls wholly inside one part, Section 5.2), every task
//! carries the affinity of its part's socket, and the configured scheduling
//! strategy plus the bandwidth-aware steal throttle decide whether those
//! affinities are soft or hard.
//!
//! The engine closes the adaptive loop of Section 7 on real threads:
//!
//! * every scan task reports the index-vector bytes it streams, attributed to
//!   the socket the data lives on; the counters aggregate per socket (the
//!   utilization signal) and per column (the heat signal);
//! * [`NativeEngine::take_epoch`] snapshots and resets those counters into
//!   the exact inputs [`AdaptiveDataPlacer::decide`] consumes;
//! * [`NativeEngine::apply_action`] executes the decision *on the live
//!   engine* — moving a column to another socket, growing or shrinking its
//!   IVP partitioning, or physically repartitioning it — between statements,
//!   without stopping the worker pool.
//!
//! Placements are guarded by a reader-writer lock: concurrent statements
//! snapshot the placement under a read lock (parts are cheap to clone;
//! physically rebuilt parts are shared through `Arc`), while rebalance
//! actions take the write lock. Statements already in flight keep scanning
//! the snapshot they took — exactly the "queries keep running while data
//! moves" behaviour the paper's adaptive design requires.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use numascan_numasim::{SocketId, Topology};
use numascan_scheduler::{
    CancellationToken, ConcurrencyHint, PoolConfig, SchedulerStats, SchedulingStrategy,
    StealThrottleConfig, TaskMeta, TaskPriority, ThreadPool, WorkClass,
};
use numascan_storage::{
    scan_positions_with_estimate, ColumnId, DictColumn, EncodedPredicate, IvLayoutKind,
    PhysicalPartitioning, Predicate, Table,
};
use parking_lot::{Condvar, Mutex, RwLock};

use crate::adaptive::{AdaptiveDataPlacer, ColumnHeat, PartLayoutStat, PlacerAction};
use crate::aggregate::{
    accumulate_filtered, accumulate_positions, dense_group_capacity, AggSpec, AggTable,
    GroupAccumulator, RowReader,
};
use crate::error::EngineError;
use crate::query::ColumnRef;
use crate::session::{QueryResult, ScanRequest};
use crate::shared::{
    PartAttachSpec, SharedCollector, SharedScanConfig, SharedScanMode, SharedScanRegistry,
    SharedScanStats, SweepKey,
};

/// Per-task output: the task's chunk index and the values it materialized.
type TaskChunks = Vec<(usize, Vec<i64>)>;

/// How the engine initially spreads each column's rows over sockets,
/// mirroring the three data placement strategies of Section 4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NativePlacement {
    /// Whole columns round-robin over the sockets (RR).
    RoundRobin,
    /// Every column's index vector split into `parts` row ranges spread over
    /// the sockets (IVP).
    IndexVectorPartitioned {
        /// Number of parts per column.
        parts: usize,
    },
    /// Every column physically rebuilt into `parts` self-contained columns
    /// (own dictionary and re-encoded index vector), spread over the sockets
    /// (PP).
    PhysicallyPartitioned {
        /// Number of parts per column.
        parts: usize,
    },
}

/// Configuration of a [`NativeEngine`].
#[derive(Debug, Clone)]
pub struct NativeEngineConfig {
    /// Task scheduling strategy (OS / Target / Bound).
    pub strategy: SchedulingStrategy,
    /// Initial data placement of every column.
    pub placement: NativePlacement,
    /// Bandwidth-aware steal throttle for the worker pool (`None` = off,
    /// keeping the static strategy semantics).
    pub steal_throttle: Option<StealThrottleConfig>,
    /// Worker threads per thread group (`None` = size from the topology).
    pub workers_per_group: Option<usize>,
    /// Cooperative shared scans: when statements attach to an in-flight
    /// sweep instead of sweeping privately ([`SharedScanMode::Auto`] by
    /// default — sharing engages exactly when the concurrency hint stops
    /// granting intra-statement parallelism).
    pub shared_scans: SharedScanConfig,
}

impl Default for NativeEngineConfig {
    fn default() -> Self {
        NativeEngineConfig {
            strategy: SchedulingStrategy::Bound,
            placement: NativePlacement::RoundRobin,
            steal_throttle: None,
            workers_per_group: None,
            shared_scans: SharedScanConfig::default(),
        }
    }
}

/// One part of a column's placement: a contiguous row range on one socket.
#[derive(Debug, Clone)]
struct ColumnPart {
    /// Global row range of the original column covered by this part.
    rows: Range<usize>,
    /// The socket whose memory holds this part.
    socket: SocketId,
    /// For physically partitioned columns: the rebuilt, self-contained
    /// column for this part. `None` means the part reads the base column.
    data: Option<Arc<DictColumn<i64>>>,
}

/// The placement of one column: its parts in row order.
#[derive(Debug, Clone)]
struct ColumnPlacement {
    parts: Vec<ColumnPart>,
}

impl ColumnPlacement {
    /// The socket holding the majority of the column's rows.
    fn primary_socket(&self, sockets: usize) -> SocketId {
        let mut rows_per_socket = vec![0usize; sockets];
        for part in &self.parts {
            rows_per_socket[part.socket.index()] += part.rows.len();
        }
        let best = rows_per_socket
            .iter()
            .enumerate()
            .max_by_key(|(_, rows)| **rows)
            .map_or(0, |(socket, _)| socket);
        SocketId(best as u16)
    }
}

/// The gather side of one aggregate statement, resolved once and shared by
/// both execution paths.
struct AggTarget {
    /// Column whose values feed the aggregate functions.
    value: ColumnId,
    /// Group-by column, if any.
    group: Option<ColumnId>,
    /// Dense partial-table slots: the group dictionary's cardinality.
    capacity: usize,
}

/// Per-epoch telemetry counters (reset by [`NativeEngine::take_epoch`]).
#[derive(Debug)]
struct Telemetry {
    /// IV bytes streamed from each socket's local memory.
    socket_bytes: Vec<AtomicU64>,
    /// IV bytes streamed per column.
    column_bytes: Vec<AtomicU64>,
    /// Statements executed per column.
    column_queries: Vec<AtomicU64>,
    /// Per-column gather bytes of fused aggregation pipelines (value and
    /// group columns read per qualifying row) — the heat signal that lets
    /// the placer see Q1-class load on columns no scan predicate touches.
    column_agg_bytes: Vec<AtomicU64>,
}

impl Telemetry {
    fn new(sockets: usize, columns: usize) -> Self {
        Telemetry {
            socket_bytes: (0..sockets).map(|_| AtomicU64::new(0)).collect(),
            column_bytes: (0..columns).map(|_| AtomicU64::new(0)).collect(),
            column_queries: (0..columns).map(|_| AtomicU64::new(0)).collect(),
            column_agg_bytes: (0..columns).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// One measurement epoch of the native engine: the utilization and heat
/// signals the adaptive data placer consumes, derived from real scan
/// telemetry instead of the simulator's hardware counters.
#[derive(Debug, Clone, PartialEq)]
pub struct NativeEpoch {
    /// IV bytes streamed from each socket's local memory during the epoch.
    pub socket_bytes: Vec<u64>,
    /// Relative per-socket utilization: each socket's share of the epoch's
    /// memory traffic, scaled so the busiest socket reads 1.0 (all zero in an
    /// idle epoch). Byte-exact, so placer decisions driven by it are
    /// deterministic for a deterministic workload.
    pub utilization: Vec<f64>,
    /// Per-column heat statistics in [`AdaptiveDataPlacer::decide`]'s format.
    pub heats: Vec<ColumnHeat>,
}

impl NativeEpoch {
    /// Spread between the most and least utilized socket (0.0 when idle or
    /// perfectly balanced) — the imbalance measure of Figure 20.
    pub fn utilization_spread(&self) -> f64 {
        let max = self.utilization.iter().copied().fold(0.0f64, f64::max);
        let min = self.utilization.iter().copied().fold(f64::INFINITY, f64::min);
        if min.is_finite() {
            max - min
        } else {
            0.0
        }
    }
}

/// Counts one statement's outstanding tasks; the issuing thread blocks until
/// every task has finished, without waiting on unrelated statements the pool
/// may be running concurrently (unlike `ThreadPool::wait_idle`).
struct StatementLatch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl StatementLatch {
    fn new(tasks: usize) -> Self {
        StatementLatch { remaining: Mutex::new(tasks), done: Condvar::new() }
    }

    fn count_down(&self) {
        let mut remaining = self.remaining.lock();
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock();
        while *remaining > 0 {
            self.done.wait(&mut remaining);
        }
    }

    /// Like [`StatementLatch::wait`], but gives up at `deadline`. Returns
    /// whether every task finished (`false` = the deadline expired first).
    fn wait_until(&self, deadline: Instant) -> bool {
        let mut remaining = self.remaining.lock();
        while *remaining > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.done.wait_for(&mut remaining, deadline - now);
        }
        true
    }
}

/// Counts a task's latch down when the task finishes *or unwinds*: the pool
/// catches task panics to stay usable, so losing the decrement to an unwind
/// would leave the issuing client blocked in [`StatementLatch::wait`]
/// forever.
struct LatchGuard(Arc<StatementLatch>);

impl Drop for LatchGuard {
    fn drop(&mut self) {
        self.0.count_down();
    }
}

/// A column-store engine executing real scans on real worker threads.
pub struct NativeEngine {
    table: Arc<Table>,
    pool: ThreadPool,
    hint: ConcurrencyHint,
    sockets: usize,
    placements: RwLock<Vec<ColumnPlacement>>,
    /// Bumped (under the placement write lock) on every placement change, so
    /// shared sweeps key on a placement snapshot and never mix two layouts.
    placement_generation: AtomicU64,
    telemetry: Telemetry,
    statement_epoch: AtomicU64,
    shared: Arc<SharedScanRegistry>,
    shared_mode: SharedScanMode,
}

impl NativeEngine {
    /// Creates an engine for `table` on a machine shaped like `topology`,
    /// scheduling with `strategy`, with round-robin placement and no steal
    /// throttle (the pre-adaptive defaults).
    pub fn new(table: Table, topology: &Topology, strategy: SchedulingStrategy) -> Self {
        Self::with_config(table, topology, NativeEngineConfig { strategy, ..Default::default() })
    }

    /// Creates an engine with full control over placement, scheduling and the
    /// steal throttle.
    pub fn with_config(table: Table, topology: &Topology, config: NativeEngineConfig) -> Self {
        let sockets = topology.socket_count();
        let placements = (0..table.column_count())
            .map(|c| Self::initial_placement(&table, c, sockets, config.placement))
            .collect();
        let pool = ThreadPool::new(
            topology,
            PoolConfig {
                strategy: config.strategy,
                workers_per_group: config.workers_per_group,
                steal_throttle: config.steal_throttle,
                ..PoolConfig::default()
            },
        );
        NativeEngine {
            telemetry: Telemetry::new(sockets, table.column_count()),
            table: Arc::new(table),
            pool,
            hint: ConcurrencyHint::new(topology.total_contexts()),
            sockets,
            placements: RwLock::new(placements),
            placement_generation: AtomicU64::new(0),
            statement_epoch: AtomicU64::new(0),
            shared: Arc::new(SharedScanRegistry::new(config.shared_scans.chunk_rows)),
            shared_mode: config.shared_scans.mode,
        }
    }

    fn initial_placement(
        table: &Table,
        column: usize,
        sockets: usize,
        placement: NativePlacement,
    ) -> ColumnPlacement {
        let rows = table.row_count();
        match placement {
            NativePlacement::RoundRobin => ColumnPlacement {
                parts: vec![ColumnPart {
                    rows: 0..rows,
                    socket: SocketId((column % sockets) as u16),
                    data: None,
                }],
            },
            NativePlacement::IndexVectorPartitioned { parts } => {
                Self::ivp_placement(rows, parts, column, sockets)
            }
            NativePlacement::PhysicallyPartitioned { parts } => {
                Self::pp_placement(table.column(ColumnId(column)), parts, column, sockets)
            }
        }
    }

    /// IVP parts over the base column, spread round-robin over the sockets
    /// (offset by the column index so columns do not all start on socket 0).
    fn ivp_placement(rows: usize, parts: usize, column: usize, sockets: usize) -> ColumnPlacement {
        let parts = numascan_storage::ivp_ranges(rows, parts.max(1))
            .into_iter()
            .enumerate()
            .map(|(i, range)| ColumnPart {
                rows: range,
                socket: SocketId(((column + i) % sockets) as u16),
                data: None,
            })
            .collect();
        ColumnPlacement { parts }
    }

    /// Physically rebuilt parts, spread like IVP parts.
    fn pp_placement(
        column_data: &DictColumn<i64>,
        parts: usize,
        column: usize,
        sockets: usize,
    ) -> ColumnPlacement {
        let pp = PhysicalPartitioning::create(column_data, parts.max(1));
        let parts = pp
            .into_parts()
            .into_iter()
            .enumerate()
            .map(|(i, part)| ColumnPart {
                rows: part.rows,
                socket: SocketId(((column + i) % sockets) as u16),
                data: Some(Arc::new(part.column)),
            })
            .collect();
        ColumnPlacement { parts }
    }

    /// The table the engine serves.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The (virtual) socket holding the majority of a column's rows.
    pub fn column_socket(&self, column: ColumnId) -> SocketId {
        self.placements.read()[column.index()].primary_socket(self.sockets)
    }

    /// Number of placement parts a column currently has.
    pub fn column_partitions(&self, column: ColumnId) -> usize {
        self.placements.read()[column.index()].parts.len()
    }

    /// Executes `SELECT col FROM t WHERE col BETWEEN lo AND hi` and returns
    /// the materialized values in row order. `active_statements` feeds the
    /// concurrency hint (pass the number of concurrent queries in flight; the
    /// session layer does this automatically).
    pub fn scan_between(
        &self,
        column_name: &str,
        lo: i64,
        hi: i64,
        active_statements: usize,
    ) -> Option<Vec<i64>> {
        self.scan_predicate(column_name, &Predicate::Between { lo, hi }, active_statements)
    }

    /// Executes `SELECT col FROM t WHERE col IN (values)` and returns the
    /// materialized values in row order.
    pub fn scan_in_list(
        &self,
        column_name: &str,
        values: &[i64],
        active_statements: usize,
    ) -> Option<Vec<i64>> {
        self.scan_predicate(column_name, &Predicate::InList(values.to_vec()), active_statements)
    }

    /// Counts the rows matching `col BETWEEN lo AND hi`.
    pub fn count_between(
        &self,
        column_name: &str,
        lo: i64,
        hi: i64,
        active_statements: usize,
    ) -> Option<usize> {
        self.scan_between(column_name, lo, hi, active_statements).map(|v| v.len())
    }

    /// Executes an arbitrary predicate scan over one column and blocks until
    /// this statement (and only this statement) completes.
    ///
    /// Routing: under low concurrency the statement is split into
    /// concurrency-hint-many placement-aligned private tasks
    /// ([`NativeEngine::scan_private`]); once the hint stops granting
    /// intra-statement parallelism (or [`SharedScanMode::Always`] is
    /// configured) the statement instead *attaches* to the cooperative
    /// shared sweep of each of its parts ([`NativeEngine::scan_shared`]),
    /// so one SWAR sweep serves the whole waiting set. Results are
    /// byte-identical either way.
    pub fn scan_predicate(
        &self,
        column_name: &str,
        predicate: &Predicate<i64>,
        active_statements: usize,
    ) -> Option<Vec<i64>> {
        self.scan_with_deadline(column_name, predicate, active_statements, None).ok()
    }

    /// Executes a session-layer [`ScanRequest`], honouring its optional
    /// deadline (measured from this call).
    pub fn scan_request(
        &self,
        request: &ScanRequest,
        active_statements: usize,
    ) -> Result<Vec<i64>, EngineError> {
        let deadline = request.deadline.map(|d| Instant::now() + d);
        self.scan_with_deadline(request.column(), &request.predicate(), active_statements, deadline)
    }

    /// Executes a session-layer request of either shape: a plain scan
    /// answers [`QueryResult::Rows`]; a request carrying an [`AggSpec`]
    /// answers [`QueryResult::Aggregate`] through the fused aggregation
    /// pipeline (same routing, same deadline semantics).
    pub fn query_request(
        &self,
        request: &ScanRequest,
        active_statements: usize,
    ) -> Result<QueryResult, EngineError> {
        let deadline = request.deadline.map(|d| Instant::now() + d);
        match &request.agg {
            None => self
                .scan_with_deadline(
                    request.column(),
                    &request.predicate(),
                    active_statements,
                    deadline,
                )
                .map(QueryResult::Rows),
            Some(agg) => self
                .aggregate_with_deadline(
                    request.column(),
                    &request.predicate(),
                    agg,
                    active_statements,
                    deadline,
                )
                .map(QueryResult::Aggregate),
        }
    }

    /// [`NativeEngine::scan_predicate`] with typed errors and an optional
    /// absolute deadline, honoured at chunk boundaries on both execution
    /// paths: on the private path the statement stops waiting at the
    /// deadline and cancels its not-yet-started tasks (running chunks finish
    /// and are discarded); on the shared path the statement's attachment is
    /// purged from the sweep at the next chunk boundary, so the sweep's
    /// refcounts — and every other attached statement — are untouched.
    pub fn scan_with_deadline(
        &self,
        column_name: &str,
        predicate: &Predicate<i64>,
        active_statements: usize,
        deadline: Option<Instant>,
    ) -> Result<Vec<i64>, EngineError> {
        let (column_id, base) = self
            .table
            .column_by_name(column_name)
            .ok_or_else(|| EngineError::UnknownColumn(column_name.to_string()))?;
        let (placement, generation) = {
            let placements = self.placements.read();
            // Read under the same lock that writers hold while bumping, so
            // the generation always matches the snapshot.
            (
                placements[column_id.index()].clone(),
                self.placement_generation.load(Ordering::SeqCst),
            )
        };
        let epoch = self.statement_epoch.fetch_add(1, Ordering::SeqCst);
        // The statement registers on its column before any byte is recorded,
        // so an epoch snapshot taken mid-statement can never show a socket
        // made hot by a column it reports as inactive.
        self.telemetry.column_queries[column_id.index()].fetch_add(1, Ordering::Relaxed);
        if self.should_share(active_statements, placement.parts.len()) {
            self.scan_shared(column_id, base, &placement, generation, predicate, epoch, deadline)
        } else {
            self.scan_private(
                column_id,
                base,
                &placement,
                predicate,
                active_statements,
                epoch,
                deadline,
            )
        }
    }

    /// Whether a statement at this concurrency level shares sweeps.
    ///
    /// Auto mode engages exactly where the concurrency hint (Section 5.2)
    /// stops granting a statement more than one task per part anyway (one
    /// per socket at minimum) — below that point private scans still win
    /// intra-statement parallelism from splitting; above it they only
    /// multiply memory traffic.
    fn should_share(&self, active_statements: usize, parts: usize) -> bool {
        match self.shared_mode {
            SharedScanMode::Off => false,
            SharedScanMode::Always => true,
            SharedScanMode::Auto => {
                self.hint.suggested_tasks(active_statements) <= parts.max(self.sockets)
            }
        }
    }

    /// Executes a fused scan→aggregate statement: the filter column is
    /// scanned exactly like [`NativeEngine::scan_with_deadline`] (same
    /// placement alignment, routing, pruning and deadline semantics), but
    /// qualifying rows flow straight from the SWAR mask stream into dense
    /// per-task partial tables on the part's socket — no position list is
    /// ever materialized — and the partials are merged in a deterministic
    /// part-order reduce. The returned table carries *mergeable* states
    /// (call [`AggTable::finalize`] for final floats), so the cluster tier
    /// can forward it verbatim as a per-shard partial.
    pub fn aggregate_with_deadline(
        &self,
        column_name: &str,
        predicate: &Predicate<i64>,
        agg: &AggSpec,
        active_statements: usize,
        deadline: Option<Instant>,
    ) -> Result<AggTable, EngineError> {
        let (column_id, base) = self
            .table
            .column_by_name(column_name)
            .ok_or_else(|| EngineError::UnknownColumn(column_name.to_string()))?;
        let (value_id, _) = self
            .table
            .column_by_name(&agg.value_column)
            .ok_or_else(|| EngineError::UnknownColumn(agg.value_column.clone()))?;
        let group_id = match agg.group_by.as_deref() {
            None => None,
            Some(name) => Some(
                self.table
                    .column_by_name(name)
                    .ok_or_else(|| EngineError::UnknownColumn(name.to_string()))?
                    .0,
            ),
        };
        // The dense partial tables are sized by the group *dictionary's*
        // cardinality — never by a row-count or selectivity estimate, whose
        // empty-domain and bitcase-32 edges must not size allocations.
        let capacity =
            group_id.map_or(1, |g| dense_group_capacity(self.table.column(g).dictionary().len()));
        let target = AggTarget { value: value_id, group: group_id, capacity };

        let (placement, generation) = {
            let placements = self.placements.read();
            (
                placements[column_id.index()].clone(),
                self.placement_generation.load(Ordering::SeqCst),
            )
        };
        let epoch = self.statement_epoch.fetch_add(1, Ordering::SeqCst);
        self.telemetry.column_queries[column_id.index()].fetch_add(1, Ordering::Relaxed);
        // The gather targets register as queried too: an aggregation heats
        // columns no scan predicate ever names.
        self.telemetry.column_queries[value_id.index()].fetch_add(1, Ordering::Relaxed);
        if let Some(g) = group_id {
            self.telemetry.column_queries[g.index()].fetch_add(1, Ordering::Relaxed);
        }
        let reduced = if self.should_share(active_statements, placement.parts.len()) {
            self.aggregate_shared(
                column_id, base, &placement, generation, predicate, &target, epoch, deadline,
            )
        } else {
            self.aggregate_private(
                column_id,
                base,
                &placement,
                predicate,
                &target,
                active_statements,
                epoch,
                deadline,
            )
        }?;
        // Gather telemetry, recorded on completion: one 8-byte value read
        // per qualifying row per gathered column. Qualifying-row counts are
        // workload-deterministic, so the placer's aggregation-heat signal
        // replays byte-identically like the scan-side counters.
        let gathered = reduced.matched_rows() * 8;
        self.telemetry.column_agg_bytes[value_id.index()].fetch_add(gathered, Ordering::Relaxed);
        if let Some(g) = group_id {
            self.telemetry.column_agg_bytes[g.index()].fetch_add(gathered, Ordering::Relaxed);
        }
        let group_column = group_id.map(|g| self.table.column(g));
        Ok(reduced.into_table(agg, group_column))
    }

    /// The private fused-aggregation path: the scan-side task structure of
    /// [`NativeEngine::scan_private`], but each task folds its mask stream
    /// into a dense partial table instead of materializing positions.
    #[allow(clippy::too_many_arguments)]
    fn aggregate_private(
        &self,
        column_id: ColumnId,
        base: &DictColumn<i64>,
        placement: &ColumnPlacement,
        predicate: &Predicate<i64>,
        target: &AggTarget,
        active_statements: usize,
        epoch: u64,
        deadline: Option<Instant>,
    ) -> Result<GroupAccumulator, EngineError> {
        let parts = placement.parts.len();
        let total_tasks = self.hint.suggested_tasks_for_partitions(active_statements, parts);
        let tasks_per_part = (total_tasks / parts.max(1)).max(1);

        struct TaskSpec {
            chunk: usize,
            local_rows: Range<usize>,
            /// Filter-local position → global base-table row (non-zero only
            /// for physically rebuilt parts).
            offset: usize,
            socket: SocketId,
            data: Option<Arc<DictColumn<i64>>>,
            encoded: Arc<EncodedPredicate>,
        }
        let mut specs: Vec<TaskSpec> = Vec::new();
        for part in &placement.parts {
            if part.rows.is_empty() {
                continue;
            }
            let part_column: &DictColumn<i64> = part.data.as_deref().unwrap_or(base);
            let encoded = Arc::new(predicate.encode(part_column.dictionary()));
            let local_base = if part.data.is_some() { 0 } else { part.rows.start };
            if part_column.prunes(local_base..local_base + part.rows.len(), &encoded) {
                continue;
            }
            // Scan-side telemetry exactly as on the scan path: recorded at
            // submit time at part granularity, attributed to the data's
            // socket.
            let part_bytes = part_column.iv_scan_bytes(part.rows.len());
            self.telemetry.socket_bytes[part.socket.index()]
                .fetch_add(part_bytes, Ordering::Relaxed);
            self.telemetry.column_bytes[column_id.index()].fetch_add(part_bytes, Ordering::Relaxed);
            self.pool.record_scanned_bytes(part.socket, part_bytes);

            for range in numascan_storage::ivp_ranges(part.rows.len(), tasks_per_part) {
                if range.is_empty() {
                    continue;
                }
                specs.push(TaskSpec {
                    chunk: specs.len(),
                    local_rows: local_base + range.start..local_base + range.end,
                    offset: part.rows.start - local_base,
                    socket: part.socket,
                    data: part.data.clone(),
                    encoded: Arc::clone(&encoded),
                });
            }
        }

        let latch = Arc::new(StatementLatch::new(specs.len()));
        let results: Arc<Mutex<Vec<(usize, GroupAccumulator)>>> =
            Arc::new(Mutex::new(Vec::with_capacity(specs.len())));
        let token = CancellationToken::new();
        let (capacity, value_id, group_id) = (target.capacity, target.value, target.group);
        for (seq, spec) in specs.into_iter().enumerate() {
            let part_column: &DictColumn<i64> = spec.data.as_deref().unwrap_or(base);
            let bytes = part_column.iv_scan_bytes(spec.local_rows.len());
            let meta = TaskMeta {
                affinity: Some(spec.socket),
                hard_affinity: false,
                priority: TaskPriority::new(epoch, seq as u64),
                work_class: WorkClass::MemoryIntensive,
                estimated_bytes: bytes as f64,
            };
            let table = Arc::clone(&self.table);
            let results = Arc::clone(&results);
            let count_down = LatchGuard(Arc::clone(&latch));
            self.pool.submit_cancellable(meta, token.clone(), move || {
                let _count_down = count_down;
                let filter: &DictColumn<i64> =
                    spec.data.as_deref().unwrap_or_else(|| table.column(column_id));
                let value = table.column(value_id);
                let group = group_id.map(|g| table.column(g));
                let reader = RowReader::new(value, group, spec.offset);
                let mut acc = GroupAccumulator::new(capacity);
                accumulate_filtered(
                    filter,
                    spec.local_rows.clone(),
                    &spec.encoded,
                    &reader,
                    &mut acc,
                );
                results.lock().push((spec.chunk, acc));
            });
        }
        match deadline {
            None => latch.wait(),
            Some(deadline) => {
                if !latch.wait_until(deadline) {
                    token.cancel();
                    return Err(EngineError::DeadlineExceeded);
                }
            }
        }

        let mut partials = Arc::try_unwrap(results)
            .map(|m| m.into_inner())
            .unwrap_or_else(|arc| arc.lock().clone());
        // The deterministic part-order reduce: partials merge in chunk
        // order no matter which worker finished first. (Wrapping sums make
        // the result order-insensitive anyway; the fixed order keeps it
        // byte-identical even if a checked mode is ever pinned instead.)
        partials.sort_by_key(|(i, _)| *i);
        let mut reduced = GroupAccumulator::new(capacity);
        for (_, partial) in &partials {
            reduced.merge(partial);
        }
        Ok(reduced)
    }

    /// The cooperative fused-aggregation path: attaches to the same shared
    /// sweeps as [`NativeEngine::scan_shared`] — one SWAR sweep serves scan
    /// and aggregate waiters from the same mask stream — and folds the
    /// served chunk streams instead of materializing them.
    #[allow(clippy::too_many_arguments)]
    fn aggregate_shared(
        &self,
        column_id: ColumnId,
        base: &DictColumn<i64>,
        placement: &ColumnPlacement,
        generation: u64,
        predicate: &Predicate<i64>,
        target: &AggTarget,
        epoch: u64,
        deadline: Option<Instant>,
    ) -> Result<GroupAccumulator, EngineError> {
        let collector =
            self.attach_shared(column_id, base, placement, generation, predicate, epoch);
        let chunks = collector.wait_raw_until(deadline).ok_or(EngineError::DeadlineExceeded)?;
        let value = self.table.column(target.value);
        let group = target.group.map(|g| self.table.column(g));
        let mut reduced = GroupAccumulator::new(target.capacity);
        for chunk in &chunks {
            let reader = RowReader::new(value, group, chunk.global_row_offset());
            accumulate_positions(chunk.served_positions(), &reader, &mut reduced);
        }
        Ok(reduced)
    }

    /// The private (per-statement) execution path: splits the scan into
    /// concurrency-hint-many tasks aligned to the column's placement and
    /// submits them with their parts' socket affinities.
    #[allow(clippy::too_many_arguments)]
    fn scan_private(
        &self,
        column_id: ColumnId,
        base: &DictColumn<i64>,
        placement: &ColumnPlacement,
        predicate: &Predicate<i64>,
        active_statements: usize,
        epoch: u64,
        deadline: Option<Instant>,
    ) -> Result<Vec<i64>, EngineError> {
        // Round the suggested task count up to a multiple of the parts so
        // every task's range falls wholly inside one part (Section 5.2).
        let parts = placement.parts.len();
        let total_tasks = self.hint.suggested_tasks_for_partitions(active_statements, parts);
        let tasks_per_part = (total_tasks / parts.max(1)).max(1);

        // Describe every task up front so the completion latch knows the
        // exact count before the first task can finish.
        struct TaskSpec {
            chunk: usize,
            local_rows: Range<usize>,
            socket: SocketId,
            data: Option<Arc<DictColumn<i64>>>,
            /// Shared (not cloned) by every task of the part.
            encoded: Arc<EncodedPredicate>,
            selectivity: f64,
        }
        let mut specs: Vec<TaskSpec> = Vec::new();
        for part in &placement.parts {
            if part.rows.is_empty() {
                continue;
            }
            let part_column: &DictColumn<i64> = part.data.as_deref().unwrap_or(base);

            // Encoded once per part and shared via `Arc`: PP parts carry
            // their own dictionaries, but within one part every task sees
            // the same encoding and selectivity estimate — an IN-list's vid
            // payload is never deep-cloned per task.
            let encoded = Arc::new(predicate.encode(part_column.dictionary()));

            // PP parts scan their own rebuilt column with part-local
            // positions; base-column parts scan the shared IV with global
            // positions. Values come back in global row order either way
            // because parts (and chunks within them) are numbered in order.
            let local_base = if part.data.is_some() { 0 } else { part.rows.start };

            // Zone-map pruning: when the part's vid bounds prove no row can
            // match, skip it before any byte is counted — pruned parts cost
            // neither tasks nor telemetry, exactly like rows never stored.
            if part_column.prunes(local_base..local_base + part.rows.len(), &encoded) {
                continue;
            }

            // Telemetry is recorded at submit time and at *part* granularity:
            // the byte count depends only on the placement snapshot, never on
            // how many tasks the (concurrency-dependent) hint splits the part
            // into, so replays with identical seeds produce byte-identical
            // per-socket and per-column signals regardless of thread
            // interleavings. Attribution follows the data's socket — whose
            // memory controllers serve the traffic — not the executing
            // thread.
            let part_bytes = part_column.iv_scan_bytes(part.rows.len());
            self.telemetry.socket_bytes[part.socket.index()]
                .fetch_add(part_bytes, Ordering::Relaxed);
            self.telemetry.column_bytes[column_id.index()].fetch_add(part_bytes, Ordering::Relaxed);
            self.pool.record_scanned_bytes(part.socket, part_bytes);

            let selectivity = predicate.estimated_selectivity(part_column.dictionary());

            for range in numascan_storage::ivp_ranges(part.rows.len(), tasks_per_part) {
                if range.is_empty() {
                    continue;
                }
                specs.push(TaskSpec {
                    chunk: specs.len(),
                    local_rows: local_base + range.start..local_base + range.end,
                    socket: part.socket,
                    data: part.data.clone(),
                    encoded: Arc::clone(&encoded),
                    selectivity,
                });
            }
        }

        let latch = Arc::new(StatementLatch::new(specs.len()));
        let results: Arc<Mutex<TaskChunks>> = Arc::new(Mutex::new(Vec::with_capacity(specs.len())));
        let token = CancellationToken::new();
        for (seq, spec) in specs.into_iter().enumerate() {
            let part_column: &DictColumn<i64> = spec.data.as_deref().unwrap_or(base);
            let bytes = part_column.iv_scan_bytes(spec.local_rows.len());

            let meta = TaskMeta {
                affinity: Some(spec.socket),
                hard_affinity: false,
                priority: TaskPriority::new(epoch, seq as u64),
                work_class: WorkClass::MemoryIntensive,
                estimated_bytes: bytes as f64,
            };
            let table = Arc::clone(&self.table);
            let results = Arc::clone(&results);
            // Moved *into* the closure (not created inside it): a cancelled
            // task's closure is dropped unrun, and the guard's drop still
            // counts the latch down, so an expired statement never wedges.
            let count_down = LatchGuard(Arc::clone(&latch));
            self.pool.submit_cancellable(meta, token.clone(), move || {
                let _count_down = count_down;
                let column: &DictColumn<i64> =
                    spec.data.as_deref().unwrap_or_else(|| table.column(column_id));
                let positions = scan_positions_with_estimate(
                    column,
                    spec.local_rows.clone(),
                    &spec.encoded,
                    spec.selectivity,
                );
                let values = numascan_storage::materialize_positions(column, &positions);
                results.lock().push((spec.chunk, values));
            });
        }
        match deadline {
            None => latch.wait(),
            Some(deadline) => {
                if !latch.wait_until(deadline) {
                    // Queued tasks are dropped at pickup; tasks already
                    // running finish into `results` (kept alive by their
                    // `Arc`) and are discarded with it.
                    token.cancel();
                    return Err(EngineError::DeadlineExceeded);
                }
            }
        }

        let mut chunks = Arc::try_unwrap(results)
            .map(|m| m.into_inner())
            .unwrap_or_else(|arc| arc.lock().clone());
        chunks.sort_by_key(|(i, _)| *i);
        Ok(chunks.into_iter().flat_map(|(_, v)| v).collect())
    }

    /// The cooperative execution path: the statement attaches one query per
    /// placement part to the part's shared sweep (starting the sweep, and
    /// submitting the one pool task that runs it, only when no sweep is in
    /// flight), then blocks until every part has served it in full.
    ///
    /// Demand-side telemetry is recorded exactly as on the private path —
    /// one full pass per statement per part, attributed to the data's socket
    /// — so the placer's utilization/heat signals, and therefore every
    /// adaptive decision, stay workload-deterministic no matter how many
    /// statements a sweep physically amortized. The *actual* streamed bytes
    /// are tracked in [`SharedScanStats::bytes_swept`], and the steal
    /// throttle's bandwidth estimate is fed one pass per started sweep (the
    /// attached statements add no traffic).
    #[allow(clippy::too_many_arguments)]
    fn scan_shared(
        &self,
        column_id: ColumnId,
        base: &DictColumn<i64>,
        placement: &ColumnPlacement,
        generation: u64,
        predicate: &Predicate<i64>,
        epoch: u64,
        deadline: Option<Instant>,
    ) -> Result<Vec<i64>, EngineError> {
        let collector =
            self.attach_shared(column_id, base, placement, generation, predicate, epoch);
        collector.wait_until(deadline).ok_or(EngineError::DeadlineExceeded)
    }

    /// Attaches one statement to the shared sweeps of its column's parts
    /// (registering sweeps, and submitting their dispatcher tasks, where
    /// none is in flight) and returns the collector the statement waits on.
    /// Shared by the scan and aggregate shared paths: the sweep itself is
    /// oblivious to what its waiters do with the served chunk streams.
    fn attach_shared(
        &self,
        column_id: ColumnId,
        base: &DictColumn<i64>,
        placement: &ColumnPlacement,
        generation: u64,
        predicate: &Predicate<i64>,
        epoch: u64,
    ) -> Arc<SharedCollector> {
        // Encode and zone-prune first: a part the zone map rules out never
        // registers a sweep, records no telemetry, and — crucially — does
        // not count toward the collector's completion set, so the statement
        // only waits on parts that can actually produce rows.
        let mut attaches: Vec<(usize, &ColumnPart, Arc<EncodedPredicate>)> = Vec::new();
        for (part_index, part) in placement.parts.iter().enumerate() {
            if part.rows.is_empty() {
                continue;
            }
            let part_column: &DictColumn<i64> = part.data.as_deref().unwrap_or(base);
            // One encoding per part, shared across every task and every
            // attached query of the statement.
            let encoded = Arc::new(predicate.encode(part_column.dictionary()));
            let local_base = if part.data.is_some() { 0 } else { part.rows.start };
            if part_column.prunes(local_base..local_base + part.rows.len(), &encoded) {
                continue;
            }
            attaches.push((part_index, part, encoded));
        }
        let collector = Arc::new(SharedCollector::new(attaches.len()));
        for (part_index, part, encoded) in attaches {
            let part_column: &DictColumn<i64> = part.data.as_deref().unwrap_or(base);
            let part_bytes = part_column.iv_scan_bytes(part.rows.len());
            self.telemetry.socket_bytes[part.socket.index()]
                .fetch_add(part_bytes, Ordering::Relaxed);
            self.telemetry.column_bytes[column_id.index()].fetch_add(part_bytes, Ordering::Relaxed);

            let spec = PartAttachSpec {
                key: SweepKey { column: column_id.index(), generation, part: part_index },
                socket: part.socket,
                global_base: part.rows.start,
                local_base: if part.data.is_some() { 0 } else { part.rows.start },
                len: part.rows.len(),
                pass_bytes: part_bytes,
                table: Arc::clone(&self.table),
                column_id,
                data: part.data.clone(),
            };
            if let Some(ticket) = self.shared.attach(spec, encoded, Arc::clone(&collector)) {
                self.pool.record_scanned_bytes(part.socket, part_bytes);
                let registry = Arc::clone(&self.shared);
                let meta = TaskMeta {
                    affinity: Some(part.socket),
                    hard_affinity: false,
                    priority: TaskPriority::new(epoch, part_index as u64),
                    work_class: WorkClass::MemoryIntensive,
                    estimated_bytes: part_bytes as f64,
                };
                self.pool.submit(meta, move || registry.dispatch(ticket));
            }
        }
        collector
    }

    /// Counters of the cooperative shared-scan executor: sweeps started,
    /// queries attached (and how many joined mid-column), and the bytes a
    /// sweep actually streamed — compare with the demand-side epoch
    /// telemetry to read off the amortization factor.
    pub fn shared_scan_stats(&self) -> SharedScanStats {
        self.shared.stats()
    }

    // ------------------------------------------------------------------
    // Adaptive loop: telemetry out, placement actions in.
    // ------------------------------------------------------------------

    /// Snapshots and resets the epoch telemetry: per-socket bytes, the
    /// relative utilization estimate, and per-column heats — the native
    /// equivalents of the simulator-derived signals
    /// [`AdaptiveDataPlacer::decide`] was previously fed.
    pub fn take_epoch(&self) -> NativeEpoch {
        let socket_bytes: Vec<u64> =
            self.telemetry.socket_bytes.iter().map(|b| b.swap(0, Ordering::Relaxed)).collect();
        let column_bytes: Vec<u64> =
            self.telemetry.column_bytes.iter().map(|b| b.swap(0, Ordering::Relaxed)).collect();
        let column_queries: Vec<u64> =
            self.telemetry.column_queries.iter().map(|q| q.swap(0, Ordering::Relaxed)).collect();
        let column_agg_bytes: Vec<u64> =
            self.telemetry.column_agg_bytes.iter().map(|b| b.swap(0, Ordering::Relaxed)).collect();

        let max_bytes = socket_bytes.iter().copied().max().unwrap_or(0);
        let utilization: Vec<f64> = socket_bytes
            .iter()
            .map(|b| if max_bytes == 0 { 0.0 } else { *b as f64 / max_bytes as f64 })
            .collect();

        // Heat counts scan *and* aggregation traffic: a Q1-class pipeline
        // hammers its value/group columns with gathers even though no scan
        // predicate names them, and heat-driven moves must see that load.
        let total_bytes: u64 =
            column_bytes.iter().sum::<u64>() + column_agg_bytes.iter().sum::<u64>();
        let placements = self.placements.read();
        let heats = placements
            .iter()
            .enumerate()
            .map(|(c, placement)| ColumnHeat {
                column: ColumnRef { table: 0, column: c },
                primary_socket: placement.primary_socket(self.sockets),
                heat: if total_bytes == 0 {
                    0.0
                } else {
                    (column_bytes[c] + column_agg_bytes[c]) as f64 / total_bytes as f64
                },
                agg_bytes: column_agg_bytes[c],
                // Native scans stream the index vector; materialization is
                // position-driven gathers over the same rows.
                iv_intensive: true,
                partitions: placement.parts.len(),
                active: column_queries[c] > 0,
                part_layouts: placement
                    .parts
                    .iter()
                    .map(|part| {
                        let col: &DictColumn<i64> =
                            part.data.as_deref().unwrap_or_else(|| self.table.column(ColumnId(c)));
                        let rows = if part.data.is_some() {
                            0..col.row_count()
                        } else {
                            part.rows.clone()
                        };
                        PartLayoutStat {
                            layout: col.layout(),
                            run_fraction: col.run_fraction(rows),
                            rows: part.rows.len(),
                        }
                    })
                    .collect(),
            })
            .collect();
        NativeEpoch { socket_bytes, utilization, heats }
    }

    /// One step of the closed loop: feed `epoch`'s signals to the placer,
    /// apply the decision to the live engine, and return it.
    pub fn rebalance(&self, placer: &AdaptiveDataPlacer, epoch: &NativeEpoch) -> PlacerAction {
        let action = placer.decide(&epoch.utilization, &epoch.heats);
        self.apply_action(&action);
        action
    }

    /// Applies a placer decision to the live engine. Statements already in
    /// flight finish on the placement snapshot they took; new statements see
    /// the updated placement.
    pub fn apply_action(&self, action: &PlacerAction) {
        match action {
            PlacerAction::None => {}
            PlacerAction::MoveColumn { column, to } => {
                self.move_column_to(ColumnId(column.column), *to);
            }
            PlacerAction::RepartitionIvp { column, parts }
            | PlacerAction::DecreasePartitions { column, parts } => {
                self.repartition_ivp(ColumnId(column.column), *parts);
            }
            PlacerAction::RepartitionPp { column, parts } => {
                self.repartition_pp(ColumnId(column.column), *parts);
            }
            PlacerAction::Relayout { column, part, layout } => {
                self.relayout_part(ColumnId(column.column), *part, *layout);
            }
        }
    }

    /// Moves every part of a column to `to` (consolidation onto one socket).
    pub fn move_column_to(&self, column: ColumnId, to: SocketId) {
        let mut placements = self.placements.write();
        // Bumped under the write lock (as below): in-flight shared sweeps
        // keyed on the old generation finish on their snapshot, while new
        // statements start sweeps keyed on the new one — the two never mix.
        self.placement_generation.fetch_add(1, Ordering::SeqCst);
        for part in &mut placements[column.index()].parts {
            part.socket = to;
        }
    }

    /// Re-splits a column's index vector into `parts` row ranges spread over
    /// the sockets (IVP — cheap, keeps the base column's components intact).
    /// Also implements partition decreases.
    pub fn repartition_ivp(&self, column: ColumnId, parts: usize) {
        let placement =
            Self::ivp_placement(self.table.row_count(), parts, column.index(), self.sockets);
        let mut placements = self.placements.write();
        self.placement_generation.fetch_add(1, Ordering::SeqCst);
        placements[column.index()] = placement;
    }

    /// Physically rebuilds a column into `parts` self-contained columns
    /// spread over the sockets (PP — expensive, but every part then scans a
    /// dictionary and index vector of its own).
    pub fn repartition_pp(&self, column: ColumnId, parts: usize) {
        // Rebuild outside the write lock: statements keep executing on the
        // old placement while the parts are constructed.
        let placement =
            Self::pp_placement(self.table.column(column), parts, column.index(), self.sockets);
        let mut placements = self.placements.write();
        self.placement_generation.fetch_add(1, Ordering::SeqCst);
        placements[column.index()] = placement;
    }

    /// Re-encodes one placement part of a column into a different physical
    /// index-vector layout (hybrid per-partition storage, the live form of
    /// [`PlacerAction::Relayout`]). A part reading the base column is first
    /// rebuilt into a self-contained part column (the base column stays
    /// untouched for every other part), a physically rebuilt part converts a
    /// copy; either way the rebuild runs outside the placement lock and the
    /// swap bumps the placement generation, so in-flight statements and
    /// shared sweeps finish on the snapshot they took. Returns whether the
    /// part changed (`false` when it is already in the requested layout, the
    /// part index is stale, or a concurrent repartition replaced the part).
    pub fn relayout_part(&self, column: ColumnId, part: usize, layout: IvLayoutKind) -> bool {
        let (rows, data) = {
            let placements = self.placements.read();
            let Some(p) = placements[column.index()].parts.get(part) else { return false };
            if p.rows.is_empty() {
                return false;
            }
            (p.rows.clone(), p.data.clone())
        };
        let rebuilt = match data {
            Some(col) => {
                if col.layout() == layout {
                    return false;
                }
                let mut col = (*col).clone();
                col.relayout(layout);
                Arc::new(col)
            }
            None => {
                let base = self.table.column(column);
                if base.layout() == layout {
                    return false;
                }
                let mut col = base.rebuild_range(
                    format!("{}#{}-{}", base.name(), rows.start, rows.end),
                    rows.clone(),
                    base.has_index(),
                );
                col.relayout(layout);
                Arc::new(col)
            }
        };
        let mut placements = self.placements.write();
        let Some(p) = placements[column.index()].parts.get_mut(part) else { return false };
        if p.rows != rows {
            // The placement changed while we rebuilt; the advisor will see
            // the new placement's stats next epoch.
            return false;
        }
        self.placement_generation.fetch_add(1, Ordering::SeqCst);
        p.data = Some(rebuilt);
        true
    }

    /// The physical index-vector layout of one placement part (`None` for an
    /// out-of-range part index).
    pub fn column_part_layout(&self, column: ColumnId, part: usize) -> Option<IvLayoutKind> {
        let placements = self.placements.read();
        placements[column.index()]
            .parts
            .get(part)
            .map(|p| p.data.as_deref().unwrap_or_else(|| self.table.column(column)).layout())
    }

    /// Closes the worker pool's bandwidth epoch (steal-throttle telemetry)
    /// and returns the utilization estimate when a throttle is configured.
    pub fn advance_bandwidth_epoch(&self, elapsed: Duration) -> Option<Vec<f64>> {
        self.pool.advance_bandwidth_epoch(elapsed)
    }

    /// Scheduler statistics accumulated so far, including the wakeup-routing
    /// counters (`targeted_wakeups`/`chained_wakeups`, with
    /// `watchdog_wakeups` at zero as long as no wakeup had to be rescued) and
    /// the steal-throttle counters (`steal_throttle_bound`/
    /// `steal_throttle_released`, with `affinity_violations` always zero).
    pub fn scheduler_stats(&self) -> SchedulerStats {
        self.pool.stats()
    }

    /// Shuts the engine down, joining its worker threads.
    pub fn shutdown(self) {
        self.pool.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numascan_storage::TableBuilder;

    fn table(rows: usize) -> Table {
        let values: Vec<i64> = (0..rows as i64).map(|i| (i * 7919) % 1000).collect();
        let ids: Vec<i64> = (0..rows as i64).collect();
        TableBuilder::new("tbl")
            .add_values("id", &ids, false)
            .add_values("payload", &values, false)
            .build()
    }

    fn small_topology() -> Topology {
        Topology::four_socket_ivybridge_ex()
    }

    fn reference_between(rows: usize, lo: i64, hi: i64) -> Vec<i64> {
        (0..rows as i64).map(|i| (i * 7919) % 1000).filter(|v| (lo..=hi).contains(v)).collect()
    }

    #[test]
    fn native_scan_returns_exactly_the_matching_values() {
        let rows = 100_000;
        let engine = NativeEngine::new(table(rows), &small_topology(), SchedulingStrategy::Bound);
        let values = engine.scan_between("payload", 100, 199, 1).unwrap();
        assert_eq!(values, reference_between(rows, 100, 199));
        engine.shutdown();
    }

    #[test]
    fn every_placement_returns_values_in_row_order() {
        let rows = 40_000;
        let expected = reference_between(rows, 200, 449);
        for placement in [
            NativePlacement::RoundRobin,
            NativePlacement::IndexVectorPartitioned { parts: 4 },
            NativePlacement::PhysicallyPartitioned { parts: 4 },
        ] {
            let engine = NativeEngine::with_config(
                table(rows),
                &small_topology(),
                NativeEngineConfig { placement, ..Default::default() },
            );
            let values = engine.scan_between("payload", 200, 449, 3).unwrap();
            assert_eq!(values, expected, "placement {placement:?}");
            engine.shutdown();
        }
    }

    #[test]
    fn in_list_scans_match_a_reference_filter() {
        let rows = 30_000;
        let engine = NativeEngine::new(table(rows), &small_topology(), SchedulingStrategy::Target);
        let picks = [7i64, 101, 555, 999];
        let values = engine.scan_in_list("payload", &picks, 2).unwrap();
        let expected: Vec<i64> =
            (0..rows as i64).map(|i| (i * 7919) % 1000).filter(|v| picks.contains(v)).collect();
        assert_eq!(values, expected);
        engine.shutdown();
    }

    #[test]
    fn concurrency_hint_controls_task_granularity() {
        let engine = NativeEngine::new(table(50_000), &small_topology(), SchedulingStrategy::Bound);
        // Low concurrency: many tasks per query.
        engine.count_between("payload", 0, 999, 1).unwrap();
        let low_tasks = engine.scheduler_stats().executed;
        // High concurrency: a single task.
        engine.count_between("payload", 0, 999, 10_000).unwrap();
        let delta = engine.scheduler_stats().executed - low_tasks;
        assert!(
            low_tasks > delta,
            "low concurrency should produce more tasks ({low_tasks} vs {delta})"
        );
        assert_eq!(delta, 1);
        engine.shutdown();
    }

    #[test]
    fn scans_are_dispatched_by_targeted_wakeups() {
        let engine = NativeEngine::new(table(50_000), &small_topology(), SchedulingStrategy::Bound);
        for _ in 0..5 {
            engine.count_between("payload", 0, 499, 1).unwrap();
        }
        let stats = engine.scheduler_stats();
        assert!(stats.executed > 0);
        // Workers sleep between queries, so the submit path must have routed
        // wakeups; the watchdog backstop must not have been needed.
        assert!(stats.targeted_wakeups > 0, "no targeted wakeups recorded: {stats:?}");
        assert_eq!(stats.watchdog_wakeups, 0, "watchdog had to rescue a task: {stats:?}");
        assert_eq!(stats.affinity_violations, 0, "a hard task ran off-socket: {stats:?}");
        engine.shutdown();
    }

    #[test]
    fn unknown_columns_return_none() {
        let engine = NativeEngine::new(table(1_000), &small_topology(), SchedulingStrategy::Target);
        assert!(engine.scan_between("nope", 0, 1, 1).is_none());
        engine.shutdown();
    }

    #[test]
    fn full_range_scan_returns_every_row() {
        let rows = 20_000;
        let engine = NativeEngine::new(table(rows), &small_topology(), SchedulingStrategy::Os);
        let count = engine.count_between("id", 0, rows as i64, 4).unwrap();
        assert_eq!(count, rows);
        engine.shutdown();
    }

    #[test]
    fn telemetry_attributes_bytes_to_the_data_socket() {
        let engine = NativeEngine::new(table(64_000), &small_topology(), SchedulingStrategy::Bound);
        // "payload" is column 1 -> socket 1 under round-robin placement.
        engine.count_between("payload", 0, 999, 1).unwrap();
        let epoch = engine.take_epoch();
        assert!(epoch.socket_bytes[1] > 0, "{epoch:?}");
        assert_eq!(epoch.socket_bytes[0], 0);
        assert_eq!(epoch.utilization[1], 1.0);
        assert!((epoch.utilization_spread() - 1.0).abs() < 1e-12);
        let heats = &epoch.heats;
        assert!((heats[1].heat - 1.0).abs() < 1e-12, "all traffic hit the payload column");
        assert!(heats[1].active && !heats[0].active);
        // The snapshot reset the counters.
        let idle = engine.take_epoch();
        assert_eq!(idle.socket_bytes, vec![0; 4]);
        assert_eq!(idle.utilization_spread(), 0.0);
        engine.shutdown();
    }

    #[test]
    fn live_repartitioning_spreads_traffic_and_preserves_results() {
        let rows = 48_000;
        let engine = NativeEngine::new(table(rows), &small_topology(), SchedulingStrategy::Bound);
        let before = engine.scan_between("payload", 100, 299, 1).unwrap();
        let (payload, _) = engine.table().column_by_name("payload").unwrap();
        assert_eq!(engine.column_partitions(payload), 1);
        engine.take_epoch();

        engine.repartition_ivp(payload, 4);
        assert_eq!(engine.column_partitions(payload), 4);
        let after = engine.scan_between("payload", 100, 299, 1).unwrap();
        assert_eq!(after, before, "IVP repartitioning must not change results");
        let epoch = engine.take_epoch();
        assert!(
            epoch.socket_bytes.iter().all(|b| *b > 0),
            "IVP spread traffic over every socket: {epoch:?}"
        );

        engine.repartition_pp(payload, 2);
        let after_pp = engine.scan_between("payload", 100, 299, 1).unwrap();
        assert_eq!(after_pp, before, "PP repartitioning must not change results");

        engine.move_column_to(payload, SocketId(3));
        assert_eq!(engine.column_socket(payload), SocketId(3));
        let moved = engine.scan_between("payload", 100, 299, 1).unwrap();
        assert_eq!(moved, before, "moving a column must not change results");
        engine.shutdown();
    }

    #[test]
    fn zone_maps_prune_parts_the_predicate_cannot_match() {
        // A sorted column under IVP: parts cover disjoint vid ranges, so a
        // narrow Between prunes three of four parts before any byte is
        // counted — their sockets must record zero traffic.
        let rows = 64_000usize;
        let ids: Vec<i64> = (0..rows as i64).collect();
        let table = TableBuilder::new("tbl").add_values("id", &ids, false).build();
        let engine = NativeEngine::with_config(
            table,
            &small_topology(),
            NativeEngineConfig {
                placement: NativePlacement::IndexVectorPartitioned { parts: 4 },
                ..Default::default()
            },
        );
        let values = engine.scan_between("id", 100, 199, 1).unwrap();
        assert_eq!(values, (100..=199).collect::<Vec<i64>>());
        let epoch = engine.take_epoch();
        let touched = epoch.socket_bytes.iter().filter(|b| **b > 0).count();
        assert_eq!(touched, 1, "only the overlapping part may be scanned: {epoch:?}");
        // A range outside every zone scans nothing at all.
        assert_eq!(engine.scan_between("id", rows as i64 + 10, rows as i64 + 20, 1).unwrap(), []);
        assert_eq!(engine.take_epoch().socket_bytes, vec![0; 4]);
        engine.shutdown();
    }

    #[test]
    fn shared_sweeps_are_never_registered_for_pruned_parts() {
        let rows = 64_000usize;
        let ids: Vec<i64> = (0..rows as i64).collect();
        let table = TableBuilder::new("tbl").add_values("id", &ids, false).build();
        let engine = NativeEngine::with_config(
            table,
            &small_topology(),
            NativeEngineConfig {
                placement: NativePlacement::IndexVectorPartitioned { parts: 4 },
                shared_scans: SharedScanConfig {
                    mode: SharedScanMode::Always,
                    ..SharedScanConfig::default()
                },
                ..Default::default()
            },
        );
        let values = engine.scan_between("id", 100, 199, 8).unwrap();
        assert_eq!(values, (100..=199).collect::<Vec<i64>>());
        let stats = engine.shared_scan_stats();
        assert_eq!(stats.sweeps_started, 1, "pruned parts must not register sweeps: {stats:?}");
        assert_eq!(stats.rows_swept, rows as u64 / 4, "one part's pass, not the column's");
        // All parts pruned: the statement completes immediately, empty.
        assert_eq!(engine.scan_between("id", -50, -10, 8).unwrap(), []);
        assert_eq!(engine.shared_scan_stats().sweeps_started, 1);
        engine.shutdown();
    }

    #[test]
    fn live_relayout_converts_parts_and_preserves_results() {
        // Sorted low-cardinality data: 480 distinct values in runs of 100
        // rows — the layout RLE is built for.
        let rows = 48_000usize;
        let ids: Vec<i64> = (0..rows as i64).map(|i| i / 100).collect();
        let table = TableBuilder::new("tbl").add_values("id", &ids, false).build();
        let engine = NativeEngine::new(table, &small_topology(), SchedulingStrategy::Bound);
        let (id, _) = engine.table().column_by_name("id").unwrap();
        let before = engine.scan_between("id", 100, 200, 1).unwrap();
        assert_eq!(before.len(), 101 * 100);
        assert_eq!(engine.column_part_layout(id, 0), Some(IvLayoutKind::BitPacked));

        assert!(engine.relayout_part(id, 0, IvLayoutKind::Rle));
        assert_eq!(engine.column_part_layout(id, 0), Some(IvLayoutKind::Rle));
        let rle = engine.scan_between("id", 100, 200, 1).unwrap();
        assert_eq!(rle, before, "relayout must not change results");

        // Converting back and converting to the current layout are handled.
        assert!(engine.relayout_part(id, 0, IvLayoutKind::BitPacked));
        assert!(!engine.relayout_part(id, 0, IvLayoutKind::BitPacked), "no-op relayout");
        assert!(!engine.relayout_part(id, 99, IvLayoutKind::Rle), "stale part index");
        assert_eq!(engine.scan_between("id", 100, 200, 1).unwrap(), before);

        // The epoch telemetry reports the live layout and run fraction.
        engine.relayout_part(id, 0, IvLayoutKind::Rle);
        engine.count_between("id", 0, 10, 1).unwrap();
        let epoch = engine.take_epoch();
        let stats = &epoch.heats[id.index()].part_layouts;
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].layout, IvLayoutKind::Rle);
        assert!(stats[0].run_fraction < 0.02, "runs of 100 rows: {stats:?}");
        engine.shutdown();
    }

    #[test]
    fn fused_aggregation_matches_the_oracle_across_placements_and_paths() {
        use crate::aggregate::{oracle_aggregate, AggFunc, AggSpec};
        let rows = 40_000usize;
        let payload: Vec<i64> = (0..rows as i64).map(|i| (i * 7919) % 1000).collect();
        let flag: Vec<i64> = (0..rows as i64).map(|i| i % 3).collect();
        let build = || {
            TableBuilder::new("tbl")
                .add_values("payload", &payload, false)
                .add_values("flag", &flag, false)
                .build()
        };
        let predicate = Predicate::Between { lo: 100, hi: 649 };
        let agg = AggSpec::new(
            "payload",
            vec![AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max, AggFunc::Avg],
        )
        .with_group_by("flag");
        let expected = oracle_aggregate(&build(), "payload", &predicate, &agg);
        for placement in [
            NativePlacement::RoundRobin,
            NativePlacement::IndexVectorPartitioned { parts: 4 },
            NativePlacement::PhysicallyPartitioned { parts: 4 },
        ] {
            for mode in [SharedScanMode::Off, SharedScanMode::Always] {
                let engine = NativeEngine::with_config(
                    build(),
                    &small_topology(),
                    NativeEngineConfig {
                        placement,
                        shared_scans: SharedScanConfig { mode, ..SharedScanConfig::default() },
                        ..Default::default()
                    },
                );
                let got =
                    engine.aggregate_with_deadline("payload", &predicate, &agg, 3, None).unwrap();
                assert_eq!(got, expected, "placement {placement:?}, mode {mode:?}");
                engine.shutdown();
            }
        }
    }

    #[test]
    fn aggregation_gathers_register_as_heat_on_value_and_group_columns() {
        use crate::aggregate::{AggFunc, AggSpec};
        let rows = 32_000usize;
        let payload: Vec<i64> = (0..rows as i64).map(|i| (i * 13) % 100).collect();
        let price: Vec<i64> = (0..rows as i64).map(|i| i % 500).collect();
        let flag: Vec<i64> = (0..rows as i64).map(|i| i % 4).collect();
        let table = TableBuilder::new("tbl")
            .add_values("payload", &payload, false)
            .add_values("price", &price, false)
            .add_values("flag", &flag, false)
            .build();
        let engine = NativeEngine::new(table, &small_topology(), SchedulingStrategy::Bound);
        let agg = AggSpec::new("price", vec![AggFunc::Sum]).with_group_by("flag");
        engine
            .aggregate_with_deadline(
                "payload",
                &Predicate::Between { lo: 0, hi: 49 },
                &agg,
                1,
                None,
            )
            .unwrap();
        let epoch = engine.take_epoch();
        let by_name = |name: &str| {
            let (id, _) = engine.table().column_by_name(name).unwrap();
            &epoch.heats[id.index()]
        };
        // The filter column streams its IV; value and group columns are only
        // gathered, and must still light up through agg_bytes.
        assert!(by_name("price").agg_bytes > 0, "{epoch:?}");
        assert!(by_name("flag").agg_bytes > 0, "{epoch:?}");
        assert_eq!(by_name("payload").agg_bytes, 0);
        assert!(by_name("price").heat > 0.0, "gather traffic must count as heat");
        assert!(by_name("price").active && by_name("flag").active);
        engine.shutdown();
    }

    #[test]
    fn rebalance_step_repartitions_a_measured_native_hotspot() {
        let engine = NativeEngine::new(table(64_000), &small_topology(), SchedulingStrategy::Bound);
        for _ in 0..4 {
            engine.count_between("payload", 0, 499, 2).unwrap();
        }
        let epoch = engine.take_epoch();
        let placer = AdaptiveDataPlacer::default();
        let action = engine.rebalance(&placer, &epoch);
        let (payload, _) = engine.table().column_by_name("payload").unwrap();
        assert!(
            matches!(action, PlacerAction::RepartitionIvp { column, .. }
                if column.column == payload.index()),
            "the dominating hot column should be IVP-partitioned, got {action:?}"
        );
        assert!(engine.column_partitions(payload) > 1);
        engine.shutdown();
    }
}
