//! NUMA-aware scheduling of scans (Section 5.2).
//!
//! A query selecting data from a single column executes in two phases
//! (Figure 7 of the paper):
//!
//! 1. **Finding the qualifying matches.** Depending on the estimated
//!    selectivity the optimizer either scans the IV (parallelized by splitting
//!    it into ranges, one task per range, task count governed by the
//!    concurrency hint and rounded up to a multiple of the partitions) or
//!    performs index lookups (a single task whose affinity is the location of
//!    the IX).
//! 2. **Output materialization.** The output vector is divided into regions,
//!    contiguous regions on the same socket are coalesced, and a
//!    correspondingly weighted number of tasks is issued per partition with
//!    the affinity of that partition's socket.
//!
//! The planner produces [`PlannedTask`]s whose *desired* affinity is derived
//! from the column's PSM-backed placement; the scheduling strategy (OS,
//! Target, Bound) later decides whether that affinity is kept, and whether it
//! is hard.

use numascan_numasim::{SocketId, Topology};
use numascan_scheduler::{ConcurrencyHint, WorkClass};

use crate::cost::{CostModel, MemTarget, TaskWork};
use crate::placement::{ComponentLocation, ComponentSegment, PlacedColumn};
use crate::query::QueryKind;

/// One task produced by the planner, before the scheduling strategy is
/// applied.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedTask {
    /// Socket the task's data lives on (`None` when the data is interleaved
    /// and no socket is preferable).
    pub affinity: Option<SocketId>,
    /// Resource profile of the task.
    pub work_class: WorkClass,
    /// The work the task performs.
    pub work: TaskWork,
}

/// The two phases of a planned query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// Phase 1: find the qualifying matches (scan or index lookups).
    pub phase1: Vec<PlannedTask>,
    /// Phase 2: output materialization (empty for aggregations and for
    /// predicates that select nothing).
    pub phase2: Vec<PlannedTask>,
}

impl QueryPlan {
    /// Total number of tasks over both phases.
    pub fn task_count(&self) -> usize {
        self.phase1.len() + self.phase2.len()
    }
}

/// The planner: turns a query over a placed column into tasks with affinities.
#[derive(Debug, Clone)]
pub struct ScanPlanner {
    cost: CostModel,
    hint: ConcurrencyHint,
}

impl ScanPlanner {
    /// Creates a planner for a machine described by `topology`.
    pub fn new(topology: &Topology, cost: CostModel) -> Self {
        ScanPlanner { cost, hint: ConcurrencyHint::new(topology.total_contexts()) }
    }

    /// The planner's cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The planner's concurrency hint.
    pub fn concurrency_hint(&self) -> &ConcurrencyHint {
        &self.hint
    }

    /// Plans one query.
    ///
    /// `active_statements` is the number of concurrently active statements
    /// (the concurrency hint input); `parallelism` disables intra-query
    /// parallelism when `false` (every phase becomes a single task).
    pub fn plan(
        &self,
        column: &PlacedColumn,
        kind: &QueryKind,
        active_statements: usize,
        parallelism: bool,
    ) -> QueryPlan {
        match kind {
            QueryKind::Scan { selectivity, allow_index } => {
                let selectivity = selectivity.clamp(0.0, 1.0);
                let matches = selectivity * column.spec.rows as f64;
                let phase1 =
                    if self.cost.prefers_index(selectivity, *allow_index && column.spec.with_index)
                    {
                        self.plan_index_lookup(column, selectivity, matches)
                    } else {
                        self.plan_scan(column, active_statements, parallelism)
                    };
                let phase2 =
                    self.plan_materialization(column, matches, active_statements, parallelism);
                QueryPlan { phase1, phase2 }
            }
            QueryKind::Aggregate { ops_per_row } => QueryPlan {
                phase1: self.plan_aggregate(column, *ops_per_row, active_statements, parallelism),
                phase2: Vec::new(),
            },
        }
    }

    /// Phase 1 via the inverted index: a single, unparallelized task whose
    /// affinity is the location of the IX (none when interleaved).
    fn plan_index_lookup(
        &self,
        column: &PlacedColumn,
        selectivity: f64,
        matches: f64,
    ) -> Vec<PlannedTask> {
        let ix: Option<&ComponentSegment> = column.ix_segments.first();
        let (affinity, target, distinct) = match ix {
            Some(seg) => match &seg.location {
                ComponentLocation::Socket(s) => (Some(*s), MemTarget::Socket(*s), seg.distinct),
                ComponentLocation::Interleaved(v) => {
                    (None, MemTarget::Interleaved(v.clone()), seg.distinct)
                }
            },
            // Fall back to the dictionary location if the planner is asked for
            // an index plan on an index-less column.
            None => {
                let seg = &column.dict_segments[0];
                match &seg.location {
                    ComponentLocation::Socket(s) => (Some(*s), MemTarget::Socket(*s), seg.distinct),
                    ComponentLocation::Interleaved(v) => {
                        (None, MemTarget::Interleaved(v.clone()), seg.distinct)
                    }
                }
            }
        };
        let qualifying_vids = (selectivity * distinct as f64).max(1.0);
        let mut work = TaskWork::empty();
        // Walking the position lists streams 4 bytes per match from the IX.
        work.add_stream(target.clone(), matches * 4.0);
        // One offset lookup per qualifying vid plus pointer chasing per match.
        work.add_random(target, qualifying_vids + matches * 0.1);
        work.cpu_ops = matches * self.cost.index_ops_per_match;
        vec![PlannedTask { affinity, work_class: WorkClass::CpuIntensive, work }]
    }

    /// Phase 1 via a scan of the IV, split into tasks whose ranges fall wholly
    /// inside one IV partition.
    fn plan_scan(
        &self,
        column: &PlacedColumn,
        active_statements: usize,
        parallelism: bool,
    ) -> Vec<PlannedTask> {
        let segments = &column.iv_segments;
        let rows = column.spec.rows as f64;
        let bytes_per_row = column.spec.bitcase() as f64 / 8.0;

        if !parallelism {
            // A single task scans every partition; remote partitions are read
            // across the interconnect.
            let affinity = Some(segments[0].socket);
            let mut work = TaskWork::empty();
            for seg in segments {
                let seg_rows = (seg.rows.end - seg.rows.start) as f64;
                work.add_stream(MemTarget::Socket(seg.socket), seg_rows * bytes_per_row);
            }
            work.cpu_ops = rows * self.cost.scan_ops_per_row;
            return vec![PlannedTask { affinity, work_class: WorkClass::MemoryIntensive, work }];
        }

        let total_tasks = self
            .hint
            .suggested_tasks_for_partitions(active_statements, segments.len())
            .max(segments.len());
        let tasks_per_segment = (total_tasks / segments.len()).max(1);

        let mut out = Vec::with_capacity(segments.len() * tasks_per_segment);
        for seg in segments {
            let seg_rows = (seg.rows.end - seg.rows.start) as f64;
            let rows_per_task = seg_rows / tasks_per_segment as f64;
            for _ in 0..tasks_per_segment {
                let mut work = TaskWork::empty();
                work.add_stream(MemTarget::Socket(seg.socket), rows_per_task * bytes_per_row);
                work.cpu_ops = rows_per_task * self.cost.scan_ops_per_row;
                out.push(PlannedTask {
                    affinity: Some(seg.socket),
                    work_class: WorkClass::MemoryIntensive,
                    work,
                });
            }
        }
        out
    }

    /// Phase 2: materialization tasks, one group per IV partition, with the
    /// partition's socket as affinity and the dictionary of that partition as
    /// the random-access target.
    fn plan_materialization(
        &self,
        column: &PlacedColumn,
        matches: f64,
        active_statements: usize,
        parallelism: bool,
    ) -> Vec<PlannedTask> {
        if matches < 1.0 {
            return Vec::new();
        }
        let rows = column.spec.rows as f64;
        let segments = &column.iv_segments;

        let dict_target_for = |row: u64| -> MemTarget {
            match &column.dict_segment_of_row(row).location {
                ComponentLocation::Socket(s) => MemTarget::Socket(*s),
                ComponentLocation::Interleaved(v) => MemTarget::Interleaved(v.clone()),
            }
        };

        if !parallelism {
            let affinity = Some(segments[0].socket);
            let mut work = TaskWork::empty();
            for seg in segments {
                let seg_rows = (seg.rows.end - seg.rows.start) as f64;
                let seg_matches = matches * seg_rows / rows;
                work.add_random(
                    dict_target_for(seg.rows.start),
                    seg_matches * self.cost.materialize_dict_miss_fraction,
                );
                work.add_stream(
                    MemTarget::Socket(segments[0].socket),
                    seg_matches * column.spec.value_bytes as f64,
                );
            }
            work.cpu_ops = matches * self.cost.materialize_ops_per_match;
            return vec![PlannedTask { affinity, work_class: WorkClass::CpuIntensive, work }];
        }

        let total_tasks = self
            .hint
            .suggested_tasks_for_partitions(active_statements, segments.len())
            .max(segments.len());
        let tasks_per_segment = (total_tasks / segments.len()).max(1);

        let mut out = Vec::with_capacity(segments.len() * tasks_per_segment);
        for seg in segments {
            let seg_rows = (seg.rows.end - seg.rows.start) as f64;
            let seg_matches = matches * seg_rows / rows;
            let matches_per_task = seg_matches / tasks_per_segment as f64;
            if matches_per_task <= 0.0 {
                continue;
            }
            let dict_target = dict_target_for(seg.rows.start);
            for _ in 0..tasks_per_segment {
                let mut work = TaskWork::empty();
                // Dictionary lookups that miss the cache hierarchy.
                work.add_random(
                    dict_target.clone(),
                    matches_per_task * self.cost.materialize_dict_miss_fraction,
                );
                // Writing the decoded values to the output vector.
                work.add_stream(
                    MemTarget::Socket(seg.socket),
                    matches_per_task * column.spec.value_bytes as f64,
                );
                work.cpu_ops = matches_per_task * self.cost.materialize_ops_per_match;
                out.push(PlannedTask {
                    affinity: Some(seg.socket),
                    work_class: WorkClass::CpuIntensive,
                    work,
                });
            }
        }
        out
    }

    /// Aggregation: stream the IV of every partition and spend `ops_per_row`
    /// per row; no materialization phase.
    fn plan_aggregate(
        &self,
        column: &PlacedColumn,
        ops_per_row: f64,
        active_statements: usize,
        parallelism: bool,
    ) -> Vec<PlannedTask> {
        let class = self.cost.aggregate_work_class(ops_per_row);
        let segments = &column.iv_segments;
        let bytes_per_row = column.spec.bitcase() as f64 / 8.0;

        if !parallelism {
            let mut work = TaskWork::empty();
            for seg in segments {
                let seg_rows = (seg.rows.end - seg.rows.start) as f64;
                work.add_stream(MemTarget::Socket(seg.socket), seg_rows * bytes_per_row);
            }
            work.cpu_ops = column.spec.rows as f64 * ops_per_row;
            return vec![PlannedTask {
                affinity: Some(segments[0].socket),
                work_class: class,
                work,
            }];
        }

        let total_tasks = self
            .hint
            .suggested_tasks_for_partitions(active_statements, segments.len())
            .max(segments.len());
        let tasks_per_segment = (total_tasks / segments.len()).max(1);
        let mut out = Vec::with_capacity(segments.len() * tasks_per_segment);
        for seg in segments {
            let seg_rows = (seg.rows.end - seg.rows.start) as f64;
            let rows_per_task = seg_rows / tasks_per_segment as f64;
            for _ in 0..tasks_per_segment {
                let mut work = TaskWork::empty();
                work.add_stream(MemTarget::Socket(seg.socket), rows_per_task * bytes_per_row);
                work.cpu_ops = rows_per_task * ops_per_row;
                out.push(PlannedTask { affinity: Some(seg.socket), work_class: class, work });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{place_column_ivp, place_column_pp, place_column_rr};
    use crate::spec::ColumnSpec;
    use numascan_numasim::{Machine, Topology};

    fn machine() -> Machine {
        Machine::new(Topology::four_socket_ivybridge_ex())
    }

    fn planner(m: &Machine) -> ScanPlanner {
        ScanPlanner::new(m.topology(), CostModel::default())
    }

    fn spec(with_index: bool) -> ColumnSpec {
        ColumnSpec::integer_with_bitcase("c", 10_000_000, 20, with_index)
    }

    fn all_sockets(m: &Machine) -> Vec<numascan_numasim::SocketId> {
        m.topology().socket_ids().collect()
    }

    #[test]
    fn rr_scan_tasks_target_the_column_socket() {
        let mut m = machine();
        let col = place_column_rr(&mut m, &spec(false), SocketId(2)).unwrap();
        let p = planner(&m);
        let plan =
            p.plan(&col, &QueryKind::Scan { selectivity: 0.001, allow_index: false }, 1024, true);
        assert_eq!(plan.phase1.len(), 1, "high concurrency collapses to one scan task");
        assert_eq!(plan.phase1[0].affinity, Some(SocketId(2)));
        assert_eq!(plan.phase1[0].work_class, WorkClass::MemoryIntensive);
        // The scan streams the whole IV: 10M rows x 20 bits.
        let bytes = plan.phase1[0].work.total_stream_bytes();
        assert!((bytes - 10_000_000.0 * 2.5).abs() / bytes < 0.01);
        // Materialization tasks exist and are CPU-intensive.
        assert!(!plan.phase2.is_empty());
        assert!(plan.phase2.iter().all(|t| t.work_class == WorkClass::CpuIntensive));
    }

    #[test]
    fn low_concurrency_splits_into_many_tasks() {
        let mut m = machine();
        let col = place_column_rr(&mut m, &spec(false), SocketId(0)).unwrap();
        let p = planner(&m);
        let plan =
            p.plan(&col, &QueryKind::Scan { selectivity: 0.001, allow_index: false }, 1, true);
        assert_eq!(plan.phase1.len(), m.topology().total_contexts());
    }

    #[test]
    fn ivp_scan_tasks_cover_every_partition_socket() {
        let mut m = machine();
        let sockets = all_sockets(&m);
        let col = place_column_ivp(&mut m, &spec(false), 0, 4, &sockets).unwrap();
        let p = planner(&m);
        let plan =
            p.plan(&col, &QueryKind::Scan { selectivity: 0.001, allow_index: false }, 1024, true);
        // Rounded up to a multiple of the partitions: 4 tasks.
        assert_eq!(plan.phase1.len(), 4);
        let mut affinities: Vec<usize> =
            plan.phase1.iter().map(|t| t.affinity.unwrap().index()).collect();
        affinities.sort_unstable();
        assert_eq!(affinities, vec![0, 1, 2, 3]);
        // Materialization of an IVP column random-accesses the interleaved
        // dictionary.
        let mat = &plan.phase2[0];
        assert!(matches!(mat.work.random[0].0, MemTarget::Interleaved(_)));
    }

    #[test]
    fn pp_materialization_uses_the_local_part_dictionary() {
        let mut m = machine();
        let sockets = all_sockets(&m);
        let col = place_column_pp(&mut m, &spec(false), 4, &sockets, 0).unwrap();
        let p = planner(&m);
        let plan =
            p.plan(&col, &QueryKind::Scan { selectivity: 0.1, allow_index: false }, 1024, true);
        for task in &plan.phase2 {
            let aff = task.affinity.unwrap();
            match &task.work.random[0].0 {
                MemTarget::Socket(s) => {
                    assert_eq!(*s, aff, "dictionary accesses stay local under PP")
                }
                other => panic!("expected a socket target, got {other:?}"),
            }
        }
    }

    #[test]
    fn index_lookup_is_chosen_for_low_selectivity_and_is_single_task() {
        let mut m = machine();
        let col = place_column_rr(&mut m, &spec(true), SocketId(1)).unwrap();
        let p = planner(&m);
        let plan =
            p.plan(&col, &QueryKind::Scan { selectivity: 0.00001, allow_index: true }, 1024, true);
        assert_eq!(plan.phase1.len(), 1);
        assert_eq!(plan.phase1[0].work_class, WorkClass::CpuIntensive);
        assert_eq!(plan.phase1[0].affinity, Some(SocketId(1)));
        // The IX stream is tiny compared to a full scan.
        assert!(plan.phase1[0].work.total_stream_bytes() < 1_000_000.0);
    }

    #[test]
    fn index_lookup_on_interleaved_index_has_no_affinity() {
        let mut m = machine();
        let sockets = all_sockets(&m);
        let col = place_column_ivp(&mut m, &spec(true), 0, 4, &sockets).unwrap();
        let p = planner(&m);
        let plan =
            p.plan(&col, &QueryKind::Scan { selectivity: 0.00001, allow_index: true }, 1024, true);
        assert_eq!(plan.phase1[0].affinity, None);
    }

    #[test]
    fn high_selectivity_scans_instead_of_index() {
        let mut m = machine();
        let col = place_column_rr(&mut m, &spec(true), SocketId(0)).unwrap();
        let p = planner(&m);
        let plan =
            p.plan(&col, &QueryKind::Scan { selectivity: 0.01, allow_index: true }, 1024, true);
        assert_eq!(plan.phase1[0].work_class, WorkClass::MemoryIntensive);
        assert!(plan.phase1[0].work.total_stream_bytes() > 10_000_000.0);
    }

    #[test]
    fn zero_selectivity_has_no_materialization_phase() {
        let mut m = machine();
        let col = place_column_rr(&mut m, &spec(false), SocketId(0)).unwrap();
        let p = planner(&m);
        let plan =
            p.plan(&col, &QueryKind::Scan { selectivity: 0.0, allow_index: false }, 16, true);
        assert!(plan.phase2.is_empty());
    }

    #[test]
    fn disabling_parallelism_yields_single_tasks_reading_remote_partitions() {
        let mut m = machine();
        let sockets = all_sockets(&m);
        let col = place_column_ivp(&mut m, &spec(false), 0, 4, &sockets).unwrap();
        let p = planner(&m);
        let plan =
            p.plan(&col, &QueryKind::Scan { selectivity: 0.001, allow_index: false }, 1, false);
        assert_eq!(plan.phase1.len(), 1);
        // The single task streams from all four sockets.
        assert_eq!(plan.phase1[0].work.streams.len(), 4);
    }

    #[test]
    fn aggregation_classification_follows_ops_per_row() {
        let mut m = machine();
        let col = place_column_rr(&mut m, &spec(false), SocketId(0)).unwrap();
        let p = planner(&m);
        let q1 = p.plan(&col, &QueryKind::Aggregate { ops_per_row: 25.0 }, 32, true);
        assert!(q1.phase1.iter().all(|t| t.work_class == WorkClass::CpuIntensive));
        assert!(q1.phase2.is_empty());
        let bw = p.plan(&col, &QueryKind::Aggregate { ops_per_row: 2.0 }, 32, true);
        assert!(bw.phase1.iter().all(|t| t.work_class == WorkClass::MemoryIntensive));
    }

    #[test]
    fn task_counts_respect_the_concurrency_hint() {
        let mut m = machine();
        let sockets = all_sockets(&m);
        let col = place_column_ivp(&mut m, &spec(false), 0, 4, &sockets).unwrap();
        let p = planner(&m);
        // 4 active statements on 120 contexts: ~30 tasks rounded up to 32.
        let plan =
            p.plan(&col, &QueryKind::Scan { selectivity: 0.001, allow_index: false }, 4, true);
        assert_eq!(plan.phase1.len(), 32);
    }
}
