//! NUMA-aware aggregation pipelines fused with the scan kernels (the "from
//! scans to OLAP" step: TPC-H Q1/Q6-class queries on the paper's engine).
//!
//! The design follows the coordinator-merge pattern of the compiled-query
//! cluster OLAP line of work referenced in PAPERS.md: every scan task
//! accumulates qualifying rows into a **private, dense partial table** on the
//! socket where its part lives, and the partials are merged in a
//! deterministic part-order reduce by the statement's issuing thread (or, one
//! tier up, per-shard partials are merged by the cluster coordinator).
//!
//! Fusion is the point. The accumulators consume the SWAR kernels'
//! *mask-stream* contract ([`accumulate_filtered`] drives
//! `IndexVector::scan_range_masks` directly): a qualifying row goes straight
//! from the predicate kernel's match mask into the aggregate table — no
//! position list is materialized, no value vector is built, and the
//! per-match cost is one gather plus one accumulate. The shared scan path
//! reuses the same machinery over the sweep's chunk match lists
//! ([`accumulate_positions`]), so one cooperative sweep serves scan and
//! aggregate waiters from the same mask stream.
//!
//! **Sizing.** The dense partial table is indexed by the group column's
//! *vid*, so its capacity is clamped by the group dictionary's cardinality —
//! never derived from a selectivity estimate (whose empty-domain and
//! bitcase-32 edges are exactly the kind of input that must not size an
//! allocation).
//!
//! **Overflow semantics (pinned).** `Sum` and the sum half of `Avg` use
//! `i64::wrapping_add` — two's-complement wrapping, the same result in any
//! accumulation order, which keeps partial merges associative and replays
//! byte-identical. This is pinned by tests; checked/saturating variants were
//! rejected because they make the merged result depend on partial boundaries.

use std::collections::BTreeMap;
use std::ops::Range;

use numascan_storage::{DictColumn, EncodedPredicate, Predicate, Table};

/// One aggregate function over the value column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` of the qualifying rows (per group).
    Count,
    /// `SUM(value)` with pinned wrapping i64 semantics.
    Sum,
    /// `MIN(value)`; `NULL` for an empty group.
    Min,
    /// `MAX(value)`; `NULL` for an empty group.
    Max,
    /// `AVG(value)`, carried as a mergeable `(sum, count)` partial and only
    /// divided down at [`AggTable::finalize`].
    Avg,
}

/// The aggregation half of a statement: which column to aggregate, the
/// functions to compute, and an optional low-cardinality group-by column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggSpec {
    /// The column whose values feed the aggregate functions.
    pub value_column: String,
    /// Dictionary-encoded column to group by (`None` = one global group).
    pub group_by: Option<String>,
    /// The functions to compute, in output order.
    pub funcs: Vec<AggFunc>,
}

impl AggSpec {
    /// Aggregates `value_column` with `funcs` over all qualifying rows.
    pub fn new(value_column: impl Into<String>, funcs: Vec<AggFunc>) -> Self {
        AggSpec { value_column: value_column.into(), group_by: None, funcs }
    }

    /// Groups the aggregation by a (low-cardinality) dictionary column.
    pub fn with_group_by(mut self, column: impl Into<String>) -> Self {
        self.group_by = Some(column.into());
        self
    }
}

/// A typed merge failure: the partials cannot be combined without producing
/// a wrong number, so no number is produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggError {
    /// The two partials carry incompatible states — most importantly an
    /// average that was already finalized (divided down, its count gone):
    /// merging it with anything would silently mis-weight the result.
    NotMergeable(&'static str),
}

impl std::fmt::Display for AggError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggError::NotMergeable(why) => write!(f, "partial aggregates not mergeable: {why}"),
        }
    }
}

impl std::error::Error for AggError {}

/// One aggregate state cell: the *partial* (mergeable) forms plus the
/// finalized average. Integer-only so partial tables stay `Eq`/hashable on
/// the cluster wire; the finalized average stores `f64` bits for the same
/// reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggState {
    /// Qualifying row count.
    Count(u64),
    /// Wrapping i64 sum.
    Sum(i64),
    /// Minimum (`None` = empty group).
    Min(Option<i64>),
    /// Maximum (`None` = empty group).
    Max(Option<i64>),
    /// Mergeable average partial: the sum and the count it covers.
    Avg {
        /// Wrapping i64 sum of the group's values.
        sum: i64,
        /// Rows the sum covers.
        count: u64,
    },
    /// A finalized average (`sum / count` already divided; stored as the
    /// `f64`'s bits, `None` = empty group). **Not mergeable**: its count is
    /// gone, so combining it with any other partial would mis-weight the
    /// result — [`AggState::merge`] returns [`AggError::NotMergeable`].
    AvgFinal(Option<u64>),
}

impl AggState {
    /// The identity (empty-group) state of a function.
    pub fn identity(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum(0),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg { sum: 0, count: 0 },
        }
    }

    /// A finalized average from its float value.
    pub fn avg_final(value: Option<f64>) -> Self {
        AggState::AvgFinal(value.map(f64::to_bits))
    }

    /// Merges another partial of the same function into this one.
    pub fn merge(&mut self, other: &AggState) -> Result<(), AggError> {
        match (&mut *self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::Sum(a), AggState::Sum(b)) => *a = a.wrapping_add(*b),
            (AggState::Min(a), AggState::Min(b)) => {
                *a = match (*a, *b) {
                    (Some(x), Some(y)) => Some(x.min(y)),
                    (x, y) => x.or(y),
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                *a = match (*a, *b) {
                    (Some(x), Some(y)) => Some(x.max(y)),
                    (x, y) => x.or(y),
                }
            }
            (AggState::Avg { sum, count }, AggState::Avg { sum: s, count: c }) => {
                *sum = sum.wrapping_add(*s);
                *count += c;
            }
            (AggState::AvgFinal(_), _) | (_, AggState::AvgFinal(_)) => {
                return Err(AggError::NotMergeable("an average without its count"));
            }
            _ => return Err(AggError::NotMergeable("mismatched aggregate states")),
        }
        Ok(())
    }

    /// The finalized output cell of this state.
    pub fn value(&self) -> AggValue {
        match self {
            AggState::Count(n) => AggValue::Int(*n as i64),
            AggState::Sum(s) => AggValue::Int(*s),
            AggState::Min(v) | AggState::Max(v) => v.map_or(AggValue::Null, AggValue::Int),
            AggState::Avg { count: 0, .. } => AggValue::Null,
            AggState::Avg { sum, count } => AggValue::Float(*sum as f64 / *count as f64),
            AggState::AvgFinal(bits) => {
                bits.map_or(AggValue::Null, |b| AggValue::Float(f64::from_bits(b)))
            }
        }
    }
}

/// A finalized output cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggValue {
    /// An integer result (count, sum, min, max).
    Int(i64),
    /// A float result (avg).
    Float(f64),
    /// An empty group's min/max/avg.
    Null,
}

impl AggValue {
    /// The integer payload, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AggValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The float payload, if any.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            AggValue::Float(v) => Some(*v),
            _ => None,
        }
    }
}

/// An aggregate result table — the same type serves as the *partial* a task,
/// socket or shard produces and as the merged final result.
///
/// Groups are keyed by the group column's **value** (not its vid): cluster
/// shards rebuild their tables with shard-local dictionaries, so vids are not
/// comparable across shards while values are. Rows are sorted by key
/// (`None`, the global group, sorts first and only appears without a
/// group-by), which makes merging a linear sorted-merge and the output order
/// deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggTable {
    /// Whether the table is grouped (false = exactly one `None`-keyed row).
    pub grouped: bool,
    /// The function schema, in output order.
    pub funcs: Vec<AggFunc>,
    /// `(group value, states)` rows, sorted ascending by group value.
    pub groups: Vec<(Option<i64>, Vec<AggState>)>,
}

impl AggTable {
    /// The empty table of a spec: no rows when grouped, one identity row for
    /// the global group otherwise (SQL aggregates without GROUP BY always
    /// return one row).
    pub fn empty(spec: &AggSpec) -> Self {
        let grouped = spec.group_by.is_some();
        let groups = if grouped {
            Vec::new()
        } else {
            vec![(None, spec.funcs.iter().map(|f| AggState::identity(*f)).collect())]
        };
        AggTable { grouped, funcs: spec.funcs.clone(), groups }
    }

    /// Merges another partial into this one (sorted merge by group key).
    /// Fails typed — never with a wrong number — when the schemas differ or
    /// a state is no longer mergeable.
    pub fn merge(&mut self, other: &AggTable) -> Result<(), AggError> {
        if self.funcs != other.funcs || self.grouped != other.grouped {
            return Err(AggError::NotMergeable("aggregate schemas differ"));
        }
        let mut merged: Vec<(Option<i64>, Vec<AggState>)> =
            Vec::with_capacity(self.groups.len().max(other.groups.len()));
        let mut mine = std::mem::take(&mut self.groups).into_iter().peekable();
        let mut theirs = other.groups.iter().peekable();
        loop {
            match (mine.peek(), theirs.peek()) {
                (None, None) => break,
                (Some(_), None) => merged.push(mine.next().expect("peeked")),
                (None, Some(_)) => merged.push(theirs.next().expect("peeked").clone()),
                (Some((a, _)), Some((b, _))) => {
                    if a < b {
                        merged.push(mine.next().expect("peeked"));
                    } else if b < a {
                        merged.push(theirs.next().expect("peeked").clone());
                    } else {
                        let (key, mut states) = mine.next().expect("peeked");
                        let (_, other_states) = theirs.next().expect("peeked");
                        for (s, o) in states.iter_mut().zip(other_states) {
                            s.merge(o)?;
                        }
                        merged.push((key, states));
                    }
                }
            }
        }
        self.groups = merged;
        Ok(())
    }

    /// Divides the mergeable average partials down to their final floats.
    /// The result is terminal: merging it again is `NotMergeable`.
    pub fn finalize(mut self) -> AggTable {
        for (_, states) in &mut self.groups {
            for state in states {
                if let AggState::Avg { sum, count } = *state {
                    *state = AggState::avg_final(if count == 0 {
                        None
                    } else {
                        Some(sum as f64 / count as f64)
                    });
                }
            }
        }
        self
    }

    /// The finalized output rows: `(group value, cells)` in key order.
    pub fn rows(&self) -> Vec<(Option<i64>, Vec<AggValue>)> {
        self.groups
            .iter()
            .map(|(key, states)| (*key, states.iter().map(AggState::value).collect()))
            .collect()
    }

    /// The single row of an ungrouped table.
    ///
    /// # Panics
    /// Panics if the table is grouped.
    pub fn global_row(&self) -> Vec<AggValue> {
        assert!(!self.grouped, "global_row on a grouped table");
        self.rows().remove(0).1
    }
}

/// The dense per-task accumulator behind the fused kernels: one slot per
/// group-dictionary vid, updated per qualifying row with no branching on the
/// function list (all four statistics are a handful of ALU ops; the spec's
/// functions select among them at [`GroupAccumulator::into_table`] time).
#[derive(Debug, Clone)]
pub struct GroupAccumulator {
    count: Vec<u64>,
    sum: Vec<i64>,
    min: Vec<i64>,
    max: Vec<i64>,
}

impl GroupAccumulator {
    /// An accumulator with `groups` dense slots (clamped to at least one:
    /// the global group). Callers size this from the group dictionary's
    /// cardinality via [`dense_group_capacity`] — never from a row or
    /// selectivity estimate.
    pub fn new(groups: usize) -> Self {
        let groups = groups.max(1);
        GroupAccumulator {
            count: vec![0; groups],
            sum: vec![0; groups],
            min: vec![i64::MAX; groups],
            max: vec![i64::MIN; groups],
        }
    }

    /// Number of dense slots.
    pub fn capacity(&self) -> usize {
        self.count.len()
    }

    /// Folds one qualifying row into the table. `group` is the group
    /// column's vid (0 when there is no group-by).
    #[inline]
    pub fn update(&mut self, group: usize, value: i64) {
        self.count[group] += 1;
        // Pinned overflow semantics: wrapping, so merges stay associative.
        self.sum[group] = self.sum[group].wrapping_add(value);
        if value < self.min[group] {
            self.min[group] = value;
        }
        if value > self.max[group] {
            self.max[group] = value;
        }
    }

    /// Element-wise merge of another accumulator over the same group domain
    /// (the deterministic part-order reduce runs over these).
    ///
    /// # Panics
    /// Panics if the capacities differ — partials of one statement always
    /// share the group dictionary, so a mismatch is a logic error.
    pub fn merge(&mut self, other: &GroupAccumulator) {
        assert_eq!(self.capacity(), other.capacity(), "partials must share the group domain");
        for g in 0..self.count.len() {
            self.count[g] += other.count[g];
            self.sum[g] = self.sum[g].wrapping_add(other.sum[g]);
            self.min[g] = self.min[g].min(other.min[g]);
            self.max[g] = self.max[g].max(other.max[g]);
        }
    }

    /// Total qualifying rows folded in (the telemetry the adaptive placer's
    /// aggregation-bytes signal is derived from).
    pub fn matched_rows(&self) -> u64 {
        self.count.iter().sum()
    }

    /// Converts the dense slots into a value-keyed [`AggTable`] partial.
    /// With a group dictionary, slot `g` is keyed by `dict.value(g)` and
    /// empty slots are dropped (standard group-by semantics); without one,
    /// the single global row is always emitted, empty or not.
    pub fn into_table(self, spec: &AggSpec, group_values: Option<&DictColumn<i64>>) -> AggTable {
        let state_of = |func: AggFunc, g: usize| -> AggState {
            match func {
                AggFunc::Count => AggState::Count(self.count[g]),
                AggFunc::Sum => AggState::Sum(self.sum[g]),
                AggFunc::Min => AggState::Min((self.count[g] > 0).then_some(self.min[g])),
                AggFunc::Max => AggState::Max((self.count[g] > 0).then_some(self.max[g])),
                AggFunc::Avg => AggState::Avg { sum: self.sum[g], count: self.count[g] },
            }
        };
        let groups = match group_values {
            None => vec![(None, spec.funcs.iter().map(|f| state_of(*f, 0)).collect())],
            Some(column) => (0..self.count.len())
                .filter(|g| self.count[*g] > 0)
                .map(|g| {
                    // The dictionary is sorted, so ascending vids yield
                    // ascending keys — already in AggTable order.
                    let key = Some(*column.dictionary().value(g as u32));
                    (key, spec.funcs.iter().map(|f| state_of(*f, g)).collect())
                })
                .collect(),
        };
        AggTable { grouped: group_values.is_some(), funcs: spec.funcs.clone(), groups }
    }
}

/// The dense group-table capacity for a group dictionary of `cardinality`
/// distinct values: the cardinality itself (one slot per possible vid),
/// clamped to at least one slot. Deliberately **not** a function of any row
/// count or selectivity estimate — the estimate path's empty-domain and
/// bitcase-32 edges must never size an allocation.
pub fn dense_group_capacity(cardinality: usize) -> usize {
    cardinality.max(1)
}

/// Reads the value (and group vid) of a base-table row for the fused
/// kernels. Positions handed to the reader are in the *filter* column's
/// local coordinate space; `offset` maps them to global base-table rows
/// (non-zero exactly for physically partitioned filter parts, whose rebuilt
/// columns are scanned with part-local positions).
pub struct RowReader<'a> {
    value: &'a DictColumn<i64>,
    group: Option<&'a DictColumn<i64>>,
    offset: usize,
}

impl<'a> RowReader<'a> {
    /// A reader gathering from `value` (and `group`), shifting filter-local
    /// positions by `offset` to reach global rows.
    pub fn new(
        value: &'a DictColumn<i64>,
        group: Option<&'a DictColumn<i64>>,
        offset: usize,
    ) -> Self {
        RowReader { value, group, offset }
    }

    /// Folds the row at filter-local position `pos` into `acc`.
    #[inline]
    fn feed(&self, pos: usize, acc: &mut GroupAccumulator) {
        let row = pos + self.offset;
        let value = *self.value.value_at(row);
        let group = self.group.map_or(0, |g| g.vid_at(row) as usize);
        acc.update(group, value);
    }
}

/// The fused scan→aggregate kernel: evaluates `predicate` over `positions`
/// of the filter column and folds every qualifying row straight into `acc` —
/// no materialized position list. Range predicates ride the SWAR mask-stream
/// contract (`scan_range_masks`, both layouts); vid-list predicates probe
/// the precomputed matcher over the decode stream.
pub fn accumulate_filtered(
    filter: &DictColumn<i64>,
    positions: Range<usize>,
    predicate: &EncodedPredicate,
    reader: &RowReader<'_>,
    acc: &mut GroupAccumulator,
) {
    match predicate {
        EncodedPredicate::Empty => {}
        EncodedPredicate::Range(range) => {
            filter.index_vector().scan_range_masks(
                positions,
                range.first,
                range.last,
                |base, _, mask| {
                    let mut m = mask;
                    while m != 0 {
                        let bit = m.trailing_zeros() as usize;
                        m &= m - 1;
                        reader.feed(base + bit, acc);
                    }
                },
            );
        }
        EncodedPredicate::VidList(_) => {
            let matcher = predicate.matcher_for_rows(positions.len());
            let start = positions.start;
            for (i, vid) in filter.index_vector().iter_range(positions).enumerate() {
                if matcher.matches(vid) {
                    reader.feed(start + i, acc);
                }
            }
        }
    }
}

/// The shared-path accumulate: folds a sweep chunk's (filter-local,
/// ascending) match positions into `acc` through the same reader. One
/// cooperative sweep's mask stream thereby serves scan waiters (which
/// materialize) and aggregate waiters (which fold) alike.
pub fn accumulate_positions(positions: &[u32], reader: &RowReader<'_>, acc: &mut GroupAccumulator) {
    for &pos in positions {
        reader.feed(pos as usize, acc);
    }
}

/// The naive scalar oracle the fused path is tested against: a plain row
/// loop over the base table, value-level predicate evaluation, BTreeMap
/// group-by, identical pinned wrapping-sum semantics.
///
/// # Panics
/// Panics on unknown columns — it is a test oracle, not an engine API.
pub fn oracle_aggregate(
    table: &Table,
    filter_column: &str,
    predicate: &Predicate<i64>,
    spec: &AggSpec,
) -> AggTable {
    let (_, filter) = table.column_by_name(filter_column).expect("oracle: unknown filter column");
    let (_, value) =
        table.column_by_name(&spec.value_column).expect("oracle: unknown value column");
    let group = spec
        .group_by
        .as_deref()
        .map(|name| table.column_by_name(name).expect("oracle: unknown group column").1);
    let matches = |v: i64| -> bool {
        match predicate {
            Predicate::Between { lo, hi } => (*lo..=*hi).contains(&v),
            Predicate::Equals(x) => v == *x,
            Predicate::InList(xs) => xs.contains(&v),
        }
    };
    #[derive(Clone, Copy)]
    struct Acc {
        count: u64,
        sum: i64,
        min: i64,
        max: i64,
    }
    let mut groups: BTreeMap<Option<i64>, Acc> = BTreeMap::new();
    if group.is_none() {
        groups.insert(None, Acc { count: 0, sum: 0, min: i64::MAX, max: i64::MIN });
    }
    for row in 0..table.row_count() {
        if !matches(*filter.value_at(row)) {
            continue;
        }
        let v = *value.value_at(row);
        let key = group.map(|g| *g.value_at(row));
        let acc =
            groups.entry(key).or_insert(Acc { count: 0, sum: 0, min: i64::MAX, max: i64::MIN });
        acc.count += 1;
        acc.sum = acc.sum.wrapping_add(v);
        acc.min = acc.min.min(v);
        acc.max = acc.max.max(v);
    }
    let rows = groups
        .into_iter()
        .map(|(key, acc)| {
            let states = spec
                .funcs
                .iter()
                .map(|func| match func {
                    AggFunc::Count => AggState::Count(acc.count),
                    AggFunc::Sum => AggState::Sum(acc.sum),
                    AggFunc::Min => AggState::Min((acc.count > 0).then_some(acc.min)),
                    AggFunc::Max => AggState::Max((acc.count > 0).then_some(acc.max)),
                    AggFunc::Avg => AggState::Avg { sum: acc.sum, count: acc.count },
                })
                .collect();
            (key, states)
        })
        .collect();
    AggTable { grouped: group.is_some(), funcs: spec.funcs.clone(), groups: rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numascan_storage::TableBuilder;

    fn spec_all(group: Option<&str>) -> AggSpec {
        let spec = AggSpec::new(
            "v",
            vec![AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max, AggFunc::Avg],
        );
        match group {
            Some(g) => spec.with_group_by(g),
            None => spec,
        }
    }

    fn test_table(rows: usize) -> Table {
        let filter: Vec<i64> = (0..rows as i64).map(|i| (i * 13) % 100).collect();
        let value: Vec<i64> = (0..rows as i64).map(|i| (i * 7) % 1000 - 500).collect();
        let group: Vec<i64> = (0..rows as i64).map(|i| i % 5).collect();
        TableBuilder::new("t")
            .add_values("f", &filter, false)
            .add_values("v", &value, false)
            .add_values("g", &group, false)
            .build()
    }

    fn fused(table: &Table, predicate: &Predicate<i64>, spec: &AggSpec) -> AggTable {
        let (_, filter) = table.column_by_name("f").unwrap();
        let (_, value) = table.column_by_name(&spec.value_column).unwrap();
        let group = spec.group_by.as_deref().map(|n| table.column_by_name(n).unwrap().1);
        let cap = group.map_or(1, |g| dense_group_capacity(g.dictionary().len()));
        let mut acc = GroupAccumulator::new(cap);
        let encoded = predicate.encode(filter.dictionary());
        let reader = RowReader::new(value, group, 0);
        accumulate_filtered(filter, 0..filter.row_count(), &encoded, &reader, &mut acc);
        acc.into_table(spec, group)
    }

    #[test]
    fn fused_mask_stream_matches_the_oracle_grouped_and_global() {
        let table = test_table(10_000);
        let predicate = Predicate::Between { lo: 10, hi: 60 };
        for group in [None, Some("g")] {
            let spec = spec_all(group);
            assert_eq!(
                fused(&table, &predicate, &spec),
                oracle_aggregate(&table, "f", &predicate, &spec),
                "group={group:?}"
            );
        }
    }

    #[test]
    fn vid_list_predicates_take_the_matcher_path_and_agree() {
        let table = test_table(8_000);
        let predicate = Predicate::InList(vec![3, 17, 55, 99]);
        let spec = spec_all(Some("g"));
        assert_eq!(
            fused(&table, &predicate, &spec),
            oracle_aggregate(&table, "f", &predicate, &spec)
        );
    }

    #[test]
    fn empty_predicates_yield_the_identity_table() {
        let table = test_table(1_000);
        let predicate = Predicate::Between { lo: 5_000, hi: 6_000 };
        let global = fused(&table, &predicate, &spec_all(None));
        assert_eq!(global.groups.len(), 1, "no GROUP BY always returns one row");
        assert_eq!(
            global.global_row(),
            vec![
                AggValue::Int(0),
                AggValue::Int(0),
                AggValue::Null,
                AggValue::Null,
                AggValue::Null
            ]
        );
        let grouped = fused(&table, &predicate, &spec_all(Some("g")));
        assert!(grouped.groups.is_empty(), "grouped tables drop empty groups");
    }

    #[test]
    fn sum_overflow_semantics_are_pinned_to_wrapping() {
        let values = vec![i64::MAX, 1, 5];
        let table = TableBuilder::new("t")
            .add_values("f", &[1, 1, 99], false)
            .add_values("v", &values, false)
            .build();
        let spec = AggSpec::new("v", vec![AggFunc::Sum, AggFunc::Avg]);
        let predicate = Predicate::Equals(1);
        let got = fused(&table, &predicate, &spec);
        // i64::MAX + 1 wraps to i64::MIN — identical in the oracle, in the
        // fused path, and across any partial split.
        assert_eq!(got.groups[0].1[0], AggState::Sum(i64::MIN));
        assert_eq!(got, oracle_aggregate(&table, "f", &predicate, &spec));
    }

    #[test]
    fn partial_merges_are_order_insensitive_and_match_one_shot() {
        let table = test_table(9_999);
        let spec = spec_all(Some("g"));
        let predicate = Predicate::Between { lo: 0, hi: 49 };
        let (_, filter) = table.column_by_name("f").unwrap();
        let (_, value) = table.column_by_name("v").unwrap();
        let (_, group) = table.column_by_name("g").unwrap();
        let cap = dense_group_capacity(group.dictionary().len());
        let encoded = predicate.encode(filter.dictionary());
        let reader = RowReader::new(value, Some(group), 0);
        // Three partials over disjoint ranges, merged in part order.
        let mut partials: Vec<GroupAccumulator> = Vec::new();
        for range in [0..3_000, 3_000..7_000, 7_000..9_999] {
            let mut acc = GroupAccumulator::new(cap);
            accumulate_filtered(filter, range, &encoded, &reader, &mut acc);
            partials.push(acc);
        }
        let mut reduced = GroupAccumulator::new(cap);
        for partial in &partials {
            reduced.merge(partial);
        }
        let merged = reduced.into_table(&spec, Some(group));
        assert_eq!(merged, fused(&table, &predicate, &spec));
        // The same holds for AggTable-level (cluster-style) merging.
        let mut table_merge = AggTable::empty(&spec);
        for partial in partials {
            table_merge.merge(&partial.clone().into_table(&spec, Some(group))).unwrap();
        }
        assert_eq!(table_merge, merged);
    }

    #[test]
    fn finalized_averages_refuse_to_merge() {
        let spec = AggSpec::new("v", vec![AggFunc::Avg]);
        let mut a = AggTable {
            grouped: false,
            funcs: vec![AggFunc::Avg],
            groups: vec![(None, vec![AggState::Avg { sum: 10, count: 2 }])],
        };
        let finalized = a.clone().finalize();
        assert_eq!(finalized.global_row(), vec![AggValue::Float(5.0)]);
        assert_eq!(
            a.merge(&finalized),
            Err(AggError::NotMergeable("an average without its count")),
            "an avg without its count must never silently merge"
        );
        // Schema mismatches are typed too.
        let other = AggTable::empty(&AggSpec::new("v", vec![AggFunc::Sum]));
        assert_eq!(a.merge(&other), Err(AggError::NotMergeable("aggregate schemas differ")));
        let _ = spec;
    }

    #[test]
    fn group_capacity_is_clamped_by_dictionary_cardinality() {
        // The dense table is sized by the dictionary, never by estimates:
        // 1M rows over 5 distinct group values get 5 slots.
        assert_eq!(dense_group_capacity(5), 5);
        // The empty-domain edge clamps up to one slot instead of allocating
        // (or dividing by) zero.
        assert_eq!(dense_group_capacity(0), 1);
        let acc = GroupAccumulator::new(0);
        assert_eq!(acc.capacity(), 1);
    }

    #[test]
    fn pp_style_offsets_map_local_positions_to_global_rows() {
        let table = test_table(4_000);
        let (_, filter) = table.column_by_name("f").unwrap();
        let (_, value) = table.column_by_name("v").unwrap();
        let (_, group) = table.column_by_name("g").unwrap();
        let spec = spec_all(Some("g"));
        let predicate = Predicate::Between { lo: 20, hi: 40 };
        let cap = dense_group_capacity(group.dictionary().len());
        // Rebuild rows 1_000..4_000 as a self-contained part (its own
        // dictionary, part-local positions) and aggregate it with the
        // matching offset plus the prefix scanned from the base column.
        let part = filter.rebuild_range("f#part".to_string(), 1_000..4_000, false);
        let part_encoded = predicate.encode(part.dictionary());
        let base_encoded = predicate.encode(filter.dictionary());
        let mut acc = GroupAccumulator::new(cap);
        let base_reader = RowReader::new(value, Some(group), 0);
        accumulate_filtered(filter, 0..1_000, &base_encoded, &base_reader, &mut acc);
        let part_reader = RowReader::new(value, Some(group), 1_000);
        accumulate_filtered(&part, 0..part.row_count(), &part_encoded, &part_reader, &mut acc);
        let got = acc.into_table(&spec, Some(group));
        assert_eq!(got, oracle_aggregate(&table, "f", &predicate, &spec));
    }
}
