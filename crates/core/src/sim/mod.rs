//! Virtual-time execution engine.
//!
//! The experiments of the paper are driven by up to 1024 concurrent clients
//! against servers with up to 32 sockets. [`SimEngine`] reproduces those
//! experiments deterministically: closed-loop clients issue queries with no
//! think time, the planner turns each query into tasks with PSM-derived
//! affinities, the scheduling strategy (OS / Target / Bound) and the shared
//! per-thread-group queues decide which virtual worker executes which task,
//! and the bandwidth/latency contention model of `numascan-numasim` decides
//! how long every task takes. Hardware counters, scheduler statistics,
//! throughput and per-query latencies are collected along the way.

mod engine;
mod report;

pub use engine::{SimConfig, SimEngine};
pub use report::{ColumnTraffic, LatencyStats, SimReport};
