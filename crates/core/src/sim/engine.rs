//! The virtual-time simulation engine.

use std::collections::HashMap;

use numascan_numasim::bandwidth::MemoryDemand;
use numascan_numasim::{Machine, SocketId};
use numascan_scheduler::queue::ThreadGroupId;
use numascan_scheduler::{
    CoreConfig, PopOutcome, SchedulerCore, SchedulingStrategy, SleepOutcome, TaskMeta,
    TaskPriority, WorkerId, WorkerState,
};

use crate::catalog::Catalog;
use crate::cost::CostModel;
use crate::planner::{PlannedTask, ScanPlanner};
use crate::query::{ColumnRef, QueryGenerator};
use crate::sim::report::{ColumnTraffic, LatencyStats, SimReport};

const GIB: f64 = (1u64 << 30) as f64;
const EPS: f64 = 1e-9;
/// Instructions retired per streamed byte (scan kernels touch every byte with
/// a fraction of an instruction); used only for the IPC counter proxy.
const INSTRUCTIONS_PER_STREAMED_BYTE: f64 = 0.25;

/// Configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Scheduling strategy (OS / Target / Bound).
    pub strategy: SchedulingStrategy,
    /// Number of concurrent closed-loop clients.
    pub clients: usize,
    /// Whether intra-query parallelism is enabled.
    pub parallelism: bool,
    /// Stop after this many completed queries (whichever of the three limits
    /// is hit first ends the measurement).
    pub target_queries: u64,
    /// Stop after this much virtual time (seconds).
    pub max_virtual_seconds: f64,
    /// Stop after this many simulation events (a safety valve).
    pub max_events: u64,
    /// Cost model used by the planner.
    pub cost: CostModel,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            strategy: SchedulingStrategy::Bound,
            clients: 1,
            parallelism: true,
            target_queries: 2_000,
            max_virtual_seconds: 120.0,
            max_events: 2_000_000,
            cost: CostModel::default(),
        }
    }
}

impl SimConfig {
    /// A configuration for `clients` concurrent clients under `strategy`,
    /// with a query target scaled to the concurrency so that low- and
    /// high-concurrency points take comparable simulation effort.
    pub fn for_clients(clients: usize, strategy: SchedulingStrategy) -> Self {
        SimConfig {
            strategy,
            clients,
            target_queries: ((clients as u64) * 4).clamp(400, 4_000),
            ..SimConfig::default()
        }
    }
}

/// A task waiting in the queues.
#[derive(Debug, Clone)]
struct PendingTask {
    query: usize,
    planned: PlannedTask,
}

/// A task running on a virtual worker.
#[derive(Debug)]
struct RunningTask {
    query: usize,
    /// Remaining streamed bytes per memory socket.
    streams: Vec<(SocketId, f64)>,
    /// Remaining random cache-line accesses.
    random_remaining: f64,
    /// Accesses per second this worker achieves against the random targets.
    random_rate: f64,
    /// How the random traffic is spread over sockets (for counter attribution).
    random_socket_weights: Vec<(SocketId, f64)>,
    /// Remaining CPU operations.
    cpu_remaining: f64,
}

impl RunningTask {
    fn is_done(&self) -> bool {
        self.cpu_remaining <= EPS
            && self.random_remaining <= EPS
            && self.streams.iter().all(|(_, b)| *b <= EPS)
    }
}

/// State of one in-flight query.
#[derive(Debug)]
struct QueryState {
    client: usize,
    issued_at: f64,
    outstanding: usize,
    phase2: Vec<PendingTask>,
}

/// One virtual hardware context. Its scheduling lifecycle (searching /
/// sleeping / running, group membership, signals) lives in the shared
/// [`SchedulerCore`]; this slot only carries the simulation payload.
#[derive(Debug)]
struct WorkerSlot {
    socket: SocketId,
    task: Option<RunningTask>,
}

/// The virtual-time execution engine.
pub struct SimEngine<'a> {
    machine: &'a mut Machine,
    catalog: &'a Catalog,
    config: SimConfig,
    planner: ScanPlanner,
}

impl<'a> SimEngine<'a> {
    /// Creates an engine running `catalog`'s data on `machine`.
    pub fn new(machine: &'a mut Machine, catalog: &'a Catalog, config: SimConfig) -> Self {
        let planner = ScanPlanner::new(machine.topology(), config.cost.clone());
        SimEngine { machine, catalog, config, planner }
    }

    /// Runs the simulation, drawing queries from `generator`.
    pub fn run(&mut self, generator: &mut dyn QueryGenerator) -> SimReport {
        let topology = self.machine.topology().clone();
        let per_ctx_stream = topology.socket.per_context_stream_gibs;
        let ops_per_sec = topology.socket.context_ops_per_sec;
        let overhead_ops = topology.task_overhead_us * 1e-6 * ops_per_sec;

        let solver = self.machine.bandwidth().clone();
        let latency_model = self.machine.latency().clone();
        self.machine.reset_measurement();

        // Thread groups and virtual workers (one per hardware context). All
        // scheduling state lives in the same `SchedulerCore` the real-thread
        // pool drives, stepped here deterministically in virtual time — so
        // the wakeup counters in the report are produced by the same
        // transitions instead of a hand-maintained copy.
        let core_config = CoreConfig::for_topology(&topology);
        let groups_per_socket = core_config.groups_per_socket;
        let contexts_per_group = (topology.contexts_per_socket() / groups_per_socket).max(1);
        let worker_groups: Vec<ThreadGroupId> = topology
            .hw_contexts()
            .into_iter()
            .map(|ctx| {
                let group = ctx.socket.index() * groups_per_socket
                    + (ctx.local_index as usize / contexts_per_group).min(groups_per_socket - 1);
                ThreadGroupId(group)
            })
            .collect();
        let mut core: SchedulerCore<PendingTask> =
            SchedulerCore::new(core_config.with_worker_groups(worker_groups));
        let mut workers: Vec<WorkerSlot> = topology
            .hw_contexts()
            .into_iter()
            .map(|ctx| WorkerSlot { socket: ctx.socket, task: None })
            .collect();
        // Park every idle virtual worker so the submit routing sees sleepers,
        // exactly like the real pool's workers park before the first query.
        for w in 0..workers.len() {
            assert!(matches!(core.pop_request(WorkerId(w)), PopOutcome::Empty));
            let parked = core.sleep(WorkerId(w));
            debug_assert_eq!(parked, SleepOutcome::Parked);
        }
        let mut queries: Vec<QueryState> = Vec::new();
        let mut latencies: Vec<f64> = Vec::new();
        let mut completed: u64 = 0;
        let mut epoch: u64 = 0;
        let mut now: f64 = 0.0;
        let mut events: u64 = 0;
        let mut zero_dt_streak = 0u32;

        // Rate cache: class key -> per-stream rate (GiB/s).
        let mut cached_rates: HashMap<(u16, u16), f64> = HashMap::new();
        let mut events_since_solve: u64 = 0;

        let clients = self.config.clients.max(1);

        // Per-column workload accounting for the adaptive data placer.
        let mut column_traffic: HashMap<ColumnRef, ColumnTraffic> = HashMap::new();

        // A macro-free helper closure cannot borrow `self` twice, so issuing a
        // query is written as a local function taking everything it needs.
        #[allow(clippy::too_many_arguments)]
        fn issue_query(
            client: usize,
            now: f64,
            epoch: &mut u64,
            generator: &mut dyn QueryGenerator,
            catalog: &Catalog,
            planner: &ScanPlanner,
            config: &SimConfig,
            queries: &mut Vec<QueryState>,
            core: &mut SchedulerCore<PendingTask>,
            column_traffic: &mut HashMap<ColumnRef, ColumnTraffic>,
        ) {
            let spec = generator.next_query(client);
            let column = catalog.column(spec.column);
            let plan = planner.plan(column, &spec.kind, config.clients, config.parallelism);

            // Attribute the query's planned work to its column.
            let entry = column_traffic.entry(spec.column).or_insert_with(|| ColumnTraffic {
                column: spec.column,
                queries: 0,
                stream_bytes: 0.0,
                random_bytes: 0.0,
            });
            entry.queries += 1;
            for task in plan.phase1.iter().chain(plan.phase2.iter()) {
                entry.stream_bytes += task.work.total_stream_bytes();
                entry.random_bytes += task.work.total_random_accesses() * 64.0;
            }

            let statement_epoch = *epoch;
            *epoch += 1;
            let query_id = queries.len();
            let phase2: Vec<PendingTask> = plan
                .phase2
                .into_iter()
                .map(|planned| PendingTask { query: query_id, planned })
                .collect();
            let phase1: Vec<PendingTask> = plan
                .phase1
                .into_iter()
                .map(|planned| PendingTask { query: query_id, planned })
                .collect();
            queries.push(QueryState { client, issued_at: now, outstanding: phase1.len(), phase2 });
            for (seq, task) in phase1.into_iter().enumerate() {
                let meta = build_meta(&task.planned, statement_epoch, seq as u64, config.strategy);
                // The targeted signal (if routed) is booked inside the core;
                // the assignment loop below delivers it in virtual time.
                let _ = core.submit(meta, task);
            }
        }

        for client in 0..clients {
            issue_query(
                client,
                now,
                &mut epoch,
                generator,
                self.catalog,
                &self.planner,
                &self.config,
                &mut queries,
                &mut core,
                &mut column_traffic,
            );
        }

        loop {
            if completed >= self.config.target_queries
                || now >= self.config.max_virtual_seconds
                || events >= self.config.max_events
            {
                break;
            }

            // 1. Deliver booked signals and hand queued tasks to idle
            //    workers, to a fixpoint. This is the virtual-time driver of
            //    the scheduler core: a sleeping worker wakes only when its
            //    group holds an outstanding signal (exactly like a condvar
            //    `notify_one`), pops through the same transition the pool's
            //    worker loop uses, and parks again when routing over-signalled
            //    (which the core counts as a false wakeup). The watchdog is
            //    never ticked: virtual time cannot lose a notification, and
            //    the model checker proves the routing needs no backstop.
            loop {
                let mut progress = false;
                for (w, slot) in workers.iter_mut().enumerate() {
                    let worker = WorkerId(w);
                    match core.worker_state(worker) {
                        WorkerState::Sleeping => {
                            if core.group_signals(core.worker_group(worker)) == 0 {
                                continue;
                            }
                            core.wake(worker);
                        }
                        WorkerState::Searching | WorkerState::MustSleep => {}
                        _ => continue,
                    }
                    // The worker is awake: drive it to a task or back to its
                    // park, exactly like one turn of the pool's worker loop.
                    loop {
                        match core.pop_request(worker) {
                            PopOutcome::Run { payload, .. } => {
                                slot.task = Some(start_task(
                                    payload,
                                    slot.socket,
                                    &latency_model,
                                    overhead_ops,
                                ));
                                progress = true;
                                break;
                            }
                            PopOutcome::Empty => match core.sleep(worker) {
                                SleepOutcome::Retry => continue,
                                _ => break,
                            },
                            PopOutcome::Exit => break,
                        }
                    }
                }
                if !progress {
                    break;
                }
            }

            // 2. Collect bandwidth demand classes from running workers.
            let mut classes: HashMap<(u16, u16), f64> = HashMap::new();
            let mut running = 0usize;
            for w in &workers {
                if let Some(task) = &w.task {
                    running += 1;
                    let active_streams =
                        task.streams.iter().filter(|(_, b)| *b > EPS).count().max(1);
                    for (mem, bytes) in &task.streams {
                        if *bytes > EPS {
                            *classes.entry((w.socket.0, mem.0)).or_insert(0.0) +=
                                1.0 / active_streams as f64;
                        }
                    }
                }
            }
            if running == 0 {
                // Nothing is running and (after step 1) nothing is assignable:
                // the workload is drained.
                break;
            }

            // 3. Solve (or reuse) the bandwidth allocation.
            let need_solve =
                events_since_solve >= 16 || classes.keys().any(|k| !cached_rates.contains_key(k));
            if need_solve && !classes.is_empty() {
                let demands: Vec<MemoryDemand> = classes
                    .iter()
                    .map(|(&(cpu, mem), &weight)| {
                        MemoryDemand::aggregated(
                            (u64::from(cpu) << 16) | u64::from(mem),
                            SocketId(cpu),
                            SocketId(mem),
                            per_ctx_stream,
                            weight,
                        )
                    })
                    .collect();
                let allocation = solver.solve(&demands);
                cached_rates.clear();
                for (demand, rate) in demands.iter().zip(&allocation.rates) {
                    cached_rates.insert((demand.cpu_socket.0, demand.mem_socket.0), *rate);
                }
                events_since_solve = 0;
            } else {
                events_since_solve += 1;
            }

            // 4. Earliest completion time among running tasks.
            let mut dt = self.config.max_virtual_seconds - now;
            for w in &workers {
                if let Some(task) = &w.task {
                    let completion = task_completion_seconds(
                        task,
                        w.socket,
                        &cached_rates,
                        per_ctx_stream,
                        ops_per_sec,
                    );
                    dt = dt.min(completion);
                }
            }
            dt = dt.max(0.0);
            if dt <= EPS {
                zero_dt_streak += 1;
                if zero_dt_streak > 1_000 {
                    // Defensive: avoid spinning if every remaining task is
                    // empty; treat them as instantaneous completions.
                    dt = 0.0;
                }
            } else {
                zero_dt_streak = 0;
            }

            // 5. Advance every running task by dt and collect completions.
            let mut finished: Vec<usize> = Vec::new();
            for (widx, w) in workers.iter_mut().enumerate() {
                let Some(task) = w.task.as_mut() else { continue };
                let cpu = w.socket;
                let mut streamed_total = 0.0;
                let active_streams = task.streams.iter().filter(|(_, b)| *b > EPS).count().max(1);
                for (mem, bytes) in task.streams.iter_mut() {
                    if *bytes <= EPS {
                        continue;
                    }
                    let per_stream_rate = cached_rates
                        .get(&(cpu.0, mem.0))
                        .copied()
                        .unwrap_or(per_ctx_stream / active_streams as f64);
                    let drained = (per_stream_rate * GIB * dt).min(*bytes);
                    *bytes -= drained;
                    streamed_total += drained;
                    if drained > 0.0 {
                        let demand = MemoryDemand::new(0, cpu, *mem, per_ctx_stream);
                        let (qpi_data, qpi_total) = solver.qpi_traffic_for(&demand, drained);
                        self.machine
                            .counters_mut()
                            .record_access(cpu, *mem, drained, qpi_data, qpi_total);
                    }
                }
                if task.random_remaining > EPS {
                    let drained = (task.random_rate * dt).min(task.random_remaining);
                    task.random_remaining -= drained;
                    let bytes = drained * 64.0;
                    for (mem, weight) in &task.random_socket_weights {
                        let part = bytes * weight;
                        if part > 0.0 {
                            let demand = MemoryDemand::new(0, cpu, *mem, per_ctx_stream);
                            let (qpi_data, qpi_total) = solver.qpi_traffic_for(&demand, part);
                            self.machine
                                .counters_mut()
                                .record_access(cpu, *mem, part, qpi_data, qpi_total);
                        }
                    }
                }
                if task.cpu_remaining > EPS {
                    let drained = (ops_per_sec * dt).min(task.cpu_remaining);
                    task.cpu_remaining -= drained;
                    self.machine.counters_mut().record_instructions(cpu, drained);
                }
                self.machine
                    .counters_mut()
                    .record_instructions(cpu, streamed_total * INSTRUCTIONS_PER_STREAMED_BYTE);
                self.machine.counters_mut().record_busy(cpu, dt);

                if task.is_done() {
                    finished.push(task.query);
                    w.task = None;
                    core.task_finished(WorkerId(widx), false);
                }
            }

            now += dt;
            events += 1;

            // 6. Query bookkeeping for finished tasks.
            for query_id in finished {
                let (query_done, client) = {
                    let q = &mut queries[query_id];
                    q.outstanding -= 1;
                    if q.outstanding > 0 {
                        (false, q.client)
                    } else if !q.phase2.is_empty() {
                        // Move to the materialization phase.
                        let phase2 = std::mem::take(&mut q.phase2);
                        q.outstanding = phase2.len();
                        let statement_epoch = epoch;
                        epoch += 1;
                        for (seq, task) in phase2.into_iter().enumerate() {
                            let meta = build_meta(
                                &task.planned,
                                statement_epoch,
                                seq as u64,
                                self.config.strategy,
                            );
                            let _ = core.submit(meta, task);
                        }
                        (false, q.client)
                    } else {
                        (true, q.client)
                    }
                };
                if query_done {
                    latencies.push(now - queries[query_id].issued_at);
                    completed += 1;
                    if completed < self.config.target_queries
                        && now < self.config.max_virtual_seconds
                    {
                        issue_query(
                            client,
                            now,
                            &mut epoch,
                            generator,
                            self.catalog,
                            &self.planner,
                            &self.config,
                            &mut queries,
                            &mut core,
                            &mut column_traffic,
                        );
                    }
                }
            }
        }

        self.machine.counters_mut().elapsed_seconds = now;
        let throughput_qpm = if now > 0.0 { completed as f64 / now * 60.0 } else { 0.0 };
        let mut column_traffic: Vec<ColumnTraffic> = column_traffic.into_values().collect();
        column_traffic
            .sort_by(|a, b| b.total_bytes().partial_cmp(&a.total_bytes()).expect("finite traffic"));
        SimReport {
            completed_queries: completed,
            elapsed_seconds: now,
            throughput_qpm,
            latency: LatencyStats::from_latencies_seconds(&latencies),
            latencies_seconds: latencies,
            counters: self.machine.counters().clone(),
            scheduler: core.stats().clone(),
            column_traffic,
        }
    }
}

/// Builds the scheduler metadata for a planned task and applies the strategy.
fn build_meta(
    planned: &PlannedTask,
    statement_epoch: u64,
    sequence: u64,
    strategy: SchedulingStrategy,
) -> TaskMeta {
    let meta = TaskMeta {
        affinity: planned.affinity,
        hard_affinity: false,
        priority: TaskPriority::new(statement_epoch, sequence),
        work_class: planned.work_class,
        estimated_bytes: planned.work.total_stream_bytes(),
    };
    strategy.apply_to_meta(meta)
}

/// Converts a pending task into a running task on a worker of `cpu_socket`.
fn start_task(
    pending: PendingTask,
    cpu_socket: SocketId,
    latency_model: &numascan_numasim::LatencyModel,
    overhead_ops: f64,
) -> RunningTask {
    let work = &pending.planned.work;
    // Expand every stream target into per-socket byte counts.
    let mut streams: Vec<(SocketId, f64)> = Vec::new();
    for (target, bytes) in &work.streams {
        let sockets = target.sockets();
        let share = bytes / sockets.len() as f64;
        for s in sockets {
            match streams.iter_mut().find(|(existing, _)| existing == s) {
                Some(entry) => entry.1 += share,
                None => streams.push((*s, share)),
            }
        }
    }
    // Random accesses: compute the aggregate rate for this worker and the
    // socket distribution of the traffic.
    let total_random: f64 = work.random.iter().map(|(_, c)| c).sum();
    let mut random_rate = 0.0;
    let mut random_socket_weights: Vec<(SocketId, f64)> = Vec::new();
    if total_random > 0.0 {
        // Time to perform all accesses is the sum over targets.
        let mut total_time = 0.0;
        for (target, count) in &work.random {
            let t =
                latency_model.random_access_seconds(cpu_socket, &target.to_access_target(), *count);
            total_time += t;
            let sockets = target.sockets();
            let share = count / sockets.len() as f64 / total_random;
            for s in sockets {
                match random_socket_weights.iter_mut().find(|(existing, _)| existing == s) {
                    Some(entry) => entry.1 += share,
                    None => random_socket_weights.push((*s, share)),
                }
            }
        }
        random_rate = if total_time > 0.0 { total_random / total_time } else { f64::INFINITY };
    }
    RunningTask {
        query: pending.query,
        streams,
        random_remaining: total_random,
        random_rate,
        random_socket_weights,
        cpu_remaining: work.cpu_ops + overhead_ops,
    }
}

/// Time (seconds) until a running task completes, given the current rates.
fn task_completion_seconds(
    task: &RunningTask,
    cpu_socket: SocketId,
    rates: &HashMap<(u16, u16), f64>,
    per_ctx_stream: f64,
    ops_per_sec: f64,
) -> f64 {
    let active_streams = task.streams.iter().filter(|(_, b)| *b > EPS).count().max(1);
    let mut stream_time: f64 = 0.0;
    for (mem, bytes) in &task.streams {
        if *bytes <= EPS {
            continue;
        }
        let rate = rates
            .get(&(cpu_socket.0, mem.0))
            .copied()
            .unwrap_or(per_ctx_stream / active_streams as f64)
            .max(1e-6);
        stream_time = stream_time.max(bytes / (rate * GIB));
    }
    let cpu_time = if task.cpu_remaining > EPS { task.cpu_remaining / ops_per_sec } else { 0.0 };
    let random_time = if task.random_remaining > EPS && task.random_rate > 0.0 {
        task.random_remaining / task.random_rate
    } else {
        0.0
    };
    stream_time.max(cpu_time).max(random_time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{PlacedTable, PlacementStrategy};
    use crate::query::{ColumnRef, FixedQueryGenerator, QuerySpec, RoundRobinColumnGenerator};
    use crate::spec::{ColumnSpec, TableSpec};
    use numascan_numasim::Topology;

    fn build(columns: usize, rows: u64, strategy: PlacementStrategy) -> (Machine, Catalog) {
        let mut machine = Machine::new(Topology::four_socket_ivybridge_ex());
        let spec = TableSpec::new(
            "tbl",
            rows,
            (0..columns)
                .map(|i| {
                    ColumnSpec::integer_with_bitcase(
                        format!("col{i}"),
                        rows,
                        17 + (i % 10) as u8,
                        false,
                    )
                })
                .collect(),
        );
        let placed = PlacedTable::place(&mut machine, &spec, strategy).unwrap();
        let mut catalog = Catalog::new();
        catalog.add_table(placed);
        (machine, catalog)
    }

    fn quick_config(clients: usize, strategy: SchedulingStrategy) -> SimConfig {
        SimConfig {
            strategy,
            clients,
            target_queries: 300,
            max_virtual_seconds: 30.0,
            ..SimConfig::default()
        }
    }

    #[test]
    fn simulation_completes_queries_and_reports_consistent_metrics() {
        let (mut machine, catalog) = build(8, 10_000_000, PlacementStrategy::RoundRobin);
        let mut generator = RoundRobinColumnGenerator::new(0, 8, 0.001, false);
        let config = quick_config(16, SchedulingStrategy::Bound);
        let report = SimEngine::new(&mut machine, &catalog, config).run(&mut generator);
        assert!(report.completed_queries >= 300);
        assert!(report.elapsed_seconds > 0.0);
        assert!(report.throughput_qpm > 0.0);
        assert_eq!(report.latencies_seconds.len() as u64, report.completed_queries);
        assert!(report.tasks_executed() >= report.completed_queries);
        assert!(report.total_memory_throughput_gibs() > 0.0);
        assert!(report.cpu_load_percent() > 0.0 && report.cpu_load_percent() <= 100.0);
        // Wakeup accounting is produced by the shared `SchedulerCore`, not a
        // hand-maintained copy: each submit books at most one targeted
        // signal, so targeted wakeups are positive but bounded by executions;
        // the watchdog is never ticked in virtual time (the core's routing
        // needs no backstop, as the model checker proves), so its counter is
        // exactly zero.
        assert!(report.scheduler.targeted_wakeups > 0);
        assert!(report.scheduler.targeted_wakeups <= report.tasks_executed());
        assert_eq!(report.scheduler.watchdog_wakeups, 0);
        assert!(report.false_wakeup_fraction() < 1.0);
    }

    #[test]
    fn bound_strategy_never_steals_across_sockets() {
        let (mut machine, catalog) = build(8, 5_000_000, PlacementStrategy::RoundRobin);
        let mut generator = RoundRobinColumnGenerator::new(0, 8, 0.001, false);
        let report =
            SimEngine::new(&mut machine, &catalog, quick_config(64, SchedulingStrategy::Bound))
                .run(&mut generator);
        assert_eq!(report.tasks_stolen(), 0);
    }

    #[test]
    fn numa_aware_scheduling_beats_numa_agnostic() {
        // The Figure 1 / Figure 8 effect, at reduced scale: Bound achieves a
        // multiple of the OS throughput for a memory-intensive uniform
        // workload at high concurrency.
        let (mut machine, catalog) = build(8, 5_000_000, PlacementStrategy::RoundRobin);
        let mut generator = RoundRobinColumnGenerator::new(0, 8, 0.001, false);
        let bound =
            SimEngine::new(&mut machine, &catalog, quick_config(256, SchedulingStrategy::Bound))
                .run(&mut generator);

        let (mut machine_os, catalog_os) = build(8, 5_000_000, PlacementStrategy::RoundRobin);
        let mut generator_os = RoundRobinColumnGenerator::new(0, 8, 0.001, false);
        let os =
            SimEngine::new(&mut machine_os, &catalog_os, quick_config(256, SchedulingStrategy::Os))
                .run(&mut generator_os);

        let ratio = bound.throughput_qpm / os.throughput_qpm;
        assert!(
            ratio > 2.0,
            "NUMA-aware scheduling should be much faster: bound {} vs os {} (ratio {ratio:.2})",
            bound.throughput_qpm,
            os.throughput_qpm
        );
        // The OS strategy produces mostly remote LLC misses, Bound mostly local.
        let (local_bound, remote_bound) = bound.llc_misses();
        let (local_os, remote_os) = os.llc_misses();
        assert!(local_bound > remote_bound);
        assert!(remote_os > local_os);
    }

    #[test]
    fn fixed_generator_on_single_column_saturates_one_socket() {
        let (mut machine, catalog) = build(4, 5_000_000, PlacementStrategy::RoundRobin);
        let q = QuerySpec::scan(ColumnRef { table: 0, column: 0 }, 0.001);
        let mut generator = FixedQueryGenerator::new(q);
        let report =
            SimEngine::new(&mut machine, &catalog, quick_config(128, SchedulingStrategy::Bound))
                .run(&mut generator);
        let tp = report.memory_throughput_gibs();
        let busiest = tp.iter().cloned().fold(0.0, f64::max);
        let total: f64 = tp.iter().sum();
        assert!(busiest / total > 0.9, "one socket should serve almost all traffic: {tp:?}");
    }

    #[test]
    fn single_client_benefits_from_intra_query_parallelism() {
        let (mut machine, catalog) = build(4, 20_000_000, PlacementStrategy::RoundRobin);
        let mut generator = RoundRobinColumnGenerator::new(0, 4, 0.001, false);
        let mut with = quick_config(1, SchedulingStrategy::Bound);
        with.target_queries = 100;
        let report_with = SimEngine::new(&mut machine, &catalog, with.clone()).run(&mut generator);

        let (mut machine2, catalog2) = build(4, 20_000_000, PlacementStrategy::RoundRobin);
        let mut generator2 = RoundRobinColumnGenerator::new(0, 4, 0.001, false);
        let mut without = with;
        without.parallelism = false;
        let report_without = SimEngine::new(&mut machine2, &catalog2, without).run(&mut generator2);

        assert!(
            report_with.throughput_qpm > 1.5 * report_without.throughput_qpm,
            "parallelism should help a single client: {} vs {}",
            report_with.throughput_qpm,
            report_without.throughput_qpm
        );
    }

    #[test]
    fn simulation_respects_event_and_time_limits() {
        let (mut machine, catalog) = build(2, 1_000_000, PlacementStrategy::RoundRobin);
        let mut generator = RoundRobinColumnGenerator::new(0, 2, 0.001, false);
        let config = SimConfig {
            strategy: SchedulingStrategy::Bound,
            clients: 4,
            target_queries: u64::MAX,
            max_virtual_seconds: 0.05,
            max_events: 500,
            ..SimConfig::default()
        };
        let report = SimEngine::new(&mut machine, &catalog, config).run(&mut generator);
        assert!(report.elapsed_seconds <= 0.05 + 1e-6);
    }
}
