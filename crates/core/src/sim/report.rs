//! Simulation results.

use numascan_numasim::HwCounters;
use numascan_scheduler::SchedulerStats;

/// Summary statistics of the per-query latency distribution (the paper shows
/// these as violin plots in Figure 11).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStats {
    /// Mean latency in milliseconds.
    pub mean_ms: f64,
    /// Median latency in milliseconds.
    pub p50_ms: f64,
    /// 95th percentile latency in milliseconds.
    pub p95_ms: f64,
    /// 99th percentile latency in milliseconds.
    pub p99_ms: f64,
    /// Maximum latency in milliseconds.
    pub max_ms: f64,
    /// Standard deviation in milliseconds.
    pub stddev_ms: f64,
}

impl LatencyStats {
    /// Computes the statistics from raw latencies (in seconds).
    pub fn from_latencies_seconds(latencies: &[f64]) -> Self {
        if latencies.is_empty() {
            return LatencyStats {
                mean_ms: 0.0,
                p50_ms: 0.0,
                p95_ms: 0.0,
                p99_ms: 0.0,
                max_ms: 0.0,
                stddev_ms: 0.0,
            };
        }
        let mut sorted: Vec<f64> = latencies.iter().map(|l| l * 1e3).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = sorted.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / n as f64;
        let pct = |p: f64| sorted[((p * (n - 1) as f64).round() as usize).min(n - 1)];
        LatencyStats {
            mean_ms: mean,
            p50_ms: pct(0.50),
            p95_ms: pct(0.95),
            p99_ms: pct(0.99),
            max_ms: sorted[n - 1],
            stddev_ms: var.sqrt(),
        }
    }

    /// Coefficient of variation (stddev / mean): a measure of how *unfair* the
    /// latency distribution is.
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean_ms <= 0.0 {
            0.0
        } else {
            self.stddev_ms / self.mean_ms
        }
    }
}

/// Traffic attributed to one column over the measurement (planned work of the
/// queries that selected it). This is the workload signal the adaptive data
/// placer of Section 7 consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnTraffic {
    /// Which column.
    pub column: crate::query::ColumnRef,
    /// Queries issued against the column.
    pub queries: u64,
    /// Bytes the column's queries stream sequentially (IV scans, output).
    pub stream_bytes: f64,
    /// Bytes the column's queries touch through random accesses (index and
    /// dictionary lookups).
    pub random_bytes: f64,
}

impl ColumnTraffic {
    /// Total bytes attributed to the column.
    pub fn total_bytes(&self) -> f64 {
        self.stream_bytes + self.random_bytes
    }

    /// Whether the column's workload is dominated by sequential IV scanning
    /// (then IVP is the appropriate way to partition it) rather than by index
    /// lookups / materialization (then PP is).
    pub fn is_iv_intensive(&self) -> bool {
        self.stream_bytes >= 3.0 * self.random_bytes
    }
}

/// The result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Number of queries that completed during the measurement.
    pub completed_queries: u64,
    /// Virtual seconds the measurement covered.
    pub elapsed_seconds: f64,
    /// Throughput in queries per minute.
    pub throughput_qpm: f64,
    /// Latency distribution statistics.
    pub latency: LatencyStats,
    /// Raw per-query latencies in seconds (for violin-plot style analyses).
    pub latencies_seconds: Vec<f64>,
    /// Hardware counters accumulated over the measurement.
    pub counters: HwCounters,
    /// Scheduler statistics (tasks executed, stolen).
    pub scheduler: SchedulerStats,
    /// Per-column traffic, sorted by descending total bytes.
    pub column_traffic: Vec<ColumnTraffic>,
}

impl SimReport {
    /// CPU load in percent.
    pub fn cpu_load_percent(&self) -> f64 {
        self.counters.cpu_load_percent()
    }

    /// Memory throughput per socket in GiB/s.
    pub fn memory_throughput_gibs(&self) -> Vec<f64> {
        self.counters.memory_throughput_gibs()
    }

    /// Aggregate memory throughput in GiB/s.
    pub fn total_memory_throughput_gibs(&self) -> f64 {
        self.counters.total_memory_throughput_gibs()
    }

    /// Local and remote LLC load misses.
    pub fn llc_misses(&self) -> (f64, f64) {
        self.counters.llc_misses()
    }

    /// Instructions-per-cycle proxy.
    pub fn ipc(&self) -> f64 {
        self.counters.ipc()
    }

    /// Total tasks executed.
    pub fn tasks_executed(&self) -> u64 {
        self.scheduler.executed
    }

    /// Tasks stolen across sockets.
    pub fn tasks_stolen(&self) -> u64 {
        self.scheduler.stolen_cross_socket
    }

    /// Wakeups the scheduler issued on any path (targeted, chained,
    /// watchdog). In the virtual-time engine a targeted wakeup is a task
    /// handed to an idle worker; the real-thread pool counts condvar signals.
    pub fn scheduler_wakeups(&self) -> u64 {
        self.scheduler.total_wakeups()
    }

    /// Wakeups that found no task to take (see
    /// [`numascan_scheduler::SchedulerStats::false_wakeup_fraction`]).
    pub fn false_wakeup_fraction(&self) -> f64 {
        self.scheduler.false_wakeup_fraction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_from_known_distribution() {
        let latencies: Vec<f64> = (1..=100).map(|i| i as f64 * 1e-3).collect();
        let stats = LatencyStats::from_latencies_seconds(&latencies);
        assert!((stats.mean_ms - 50.5).abs() < 1e-9);
        assert!((stats.p50_ms - 50.0).abs() < 1.01);
        assert!((stats.p95_ms - 95.0).abs() < 1.01);
        assert_eq!(stats.max_ms, 100.0);
        assert!(stats.stddev_ms > 0.0);
        assert!(stats.coefficient_of_variation() > 0.0);
    }

    #[test]
    fn empty_latencies_yield_zeroes() {
        let stats = LatencyStats::from_latencies_seconds(&[]);
        assert_eq!(stats.mean_ms, 0.0);
        assert_eq!(stats.coefficient_of_variation(), 0.0);
    }
}
