//! Latency-bound (random access) cost model.
//!
//! Streaming scans are bandwidth-bound, but two of the paper's execution
//! phases are dominated by *random* accesses instead: index lookups (the IX is
//! walked value by value) and output materialization (each qualifying position
//! triggers a dependent load into the dictionary). Such work is governed by
//! access latency and the amount of memory-level parallelism a core sustains,
//! not by peak bandwidth.

use crate::topology::{SocketId, Topology};

/// Where the target of a random access lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessTarget {
    /// All accesses hit memory of a single socket.
    Socket(SocketId),
    /// Accesses are spread uniformly over the memory of several sockets
    /// (an interleaved allocation, as used by IVP for the dictionary and IX).
    Interleaved(Vec<SocketId>),
}

impl AccessTarget {
    /// The sockets the accesses may hit.
    pub fn sockets(&self) -> &[SocketId] {
        match self {
            AccessTarget::Socket(s) => std::slice::from_ref(s),
            AccessTarget::Interleaved(v) => v.as_slice(),
        }
    }
}

/// Latency model derived from a [`Topology`].
#[derive(Debug, Clone)]
pub struct LatencyModel {
    latencies_ns: Vec<Vec<f64>>,
    mlp: f64,
}

impl LatencyModel {
    /// Builds the model for a topology.
    pub fn new(topology: &Topology) -> Self {
        let n = topology.socket_count();
        let mut latencies_ns = vec![vec![0.0; n]; n];
        for (i, row) in latencies_ns.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = topology.access_latency_ns(SocketId(i as u16), SocketId(j as u16));
            }
        }
        LatencyModel { latencies_ns, mlp: topology.socket.memory_level_parallelism }
    }

    /// Idle latency (ns) of an access from a core on `cpu` to memory on `mem`.
    pub fn latency_ns(&self, cpu: SocketId, mem: SocketId) -> f64 {
        self.latencies_ns[cpu.index()][mem.index()]
    }

    /// Average latency (ns) of an access from `cpu` to the given target.
    pub fn average_latency_ns(&self, cpu: SocketId, target: &AccessTarget) -> f64 {
        let sockets = target.sockets();
        if sockets.is_empty() {
            return 0.0;
        }
        sockets.iter().map(|m| self.latency_ns(cpu, *m)).sum::<f64>() / sockets.len() as f64
    }

    /// Time in seconds for one hardware context on `cpu` to perform `count`
    /// independent random accesses against `target`, assuming the context
    /// sustains `mlp` outstanding misses.
    pub fn random_access_seconds(&self, cpu: SocketId, target: &AccessTarget, count: f64) -> f64 {
        if count <= 0.0 {
            return 0.0;
        }
        let avg_ns = self.average_latency_ns(cpu, target);
        count * avg_ns * 1e-9 / self.mlp
    }

    /// Effective random-access throughput (accesses per second) from `cpu` to
    /// `target` for a single hardware context.
    pub fn random_access_rate(&self, cpu: SocketId, target: &AccessTarget) -> f64 {
        let avg_ns = self.average_latency_ns(cpu, target);
        if avg_ns <= 0.0 {
            return f64::INFINITY;
        }
        self.mlp / (avg_ns * 1e-9)
    }

    /// The modelled memory-level parallelism.
    pub fn memory_level_parallelism(&self) -> f64 {
        self.mlp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_accesses_are_faster_than_remote() {
        let t = Topology::four_socket_ivybridge_ex();
        let m = LatencyModel::new(&t);
        let local = m.random_access_seconds(SocketId(0), &AccessTarget::Socket(SocketId(0)), 1e6);
        let remote = m.random_access_seconds(SocketId(0), &AccessTarget::Socket(SocketId(1)), 1e6);
        assert!(remote > local);
        assert!((remote / local - 240.0 / 150.0).abs() < 1e-9);
    }

    #[test]
    fn interleaved_target_averages_latency() {
        let t = Topology::four_socket_ivybridge_ex();
        let m = LatencyModel::new(&t);
        let all: Vec<SocketId> = (0..4).map(SocketId).collect();
        let avg = m.average_latency_ns(SocketId(0), &AccessTarget::Interleaved(all));
        // 1 local (150 ns) + 3 remote (240 ns) averaged.
        let expected = (150.0 + 3.0 * 240.0) / 4.0;
        assert!((avg - expected).abs() < 1e-9);
    }

    #[test]
    fn access_rate_scales_with_mlp() {
        let t = Topology::four_socket_ivybridge_ex();
        let m = LatencyModel::new(&t);
        let rate = m.random_access_rate(SocketId(0), &AccessTarget::Socket(SocketId(0)));
        let expected = t.socket.memory_level_parallelism / 150e-9;
        assert!((rate - expected).abs() / rate < 1e-9);
        assert_eq!(m.memory_level_parallelism(), t.socket.memory_level_parallelism);
    }

    #[test]
    fn zero_count_costs_nothing() {
        let t = Topology::four_socket_ivybridge_ex();
        let m = LatencyModel::new(&t);
        assert_eq!(
            m.random_access_seconds(SocketId(0), &AccessTarget::Socket(SocketId(0)), 0.0),
            0.0
        );
    }
}
