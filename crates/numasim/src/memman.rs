//! Page-granular virtual memory manager.
//!
//! The operating system organises physical memory into fixed-size pages
//! (typically 4 KiB) and, on a NUMA machine, each page is backed by the DRAM
//! of exactly one socket. A NUMA-aware application controls and tracks the
//! physical location of its virtual memory using facilities such as
//! first-touch allocation, interleaving and `move_pages` (Section 2 of the
//! paper).
//!
//! [`MemoryManager`] models those facilities deterministically: it hands out
//! virtual address ranges, records on which socket every page is backed, can
//! move or interleave existing ranges, and enforces per-socket capacity. The
//! data itself is *not* stored here — this is a placement ledger; the
//! column-store keeps its own data in ordinary Rust memory and uses the
//! manager (through a [`crate::machine::Machine`]) to describe where that data
//! *would* live on the modelled machine.

use std::collections::BTreeMap;

use crate::error::{NumaSimError, Result};
use crate::topology::{SocketId, Topology};

/// Size of one page in bytes (4 KiB, like Linux's default page size).
pub const PAGE_SIZE: u64 = 4096;

/// A contiguous range of virtual addresses handed out by the memory manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VirtRange {
    /// First byte of the range (always page-aligned for ranges returned by
    /// [`MemoryManager::allocate`]).
    pub base: u64,
    /// Length of the range in bytes.
    pub bytes: u64,
}

impl VirtRange {
    /// Creates a new range.
    pub fn new(base: u64, bytes: u64) -> Self {
        VirtRange { base, bytes }
    }

    /// One-past-the-end address.
    pub fn end(&self) -> u64 {
        self.base + self.bytes
    }

    /// Index of the first page covered by the range.
    pub fn first_page(&self) -> u64 {
        self.base / PAGE_SIZE
    }

    /// Index one past the last page covered by the range.
    pub fn end_page(&self) -> u64 {
        self.end().div_ceil(PAGE_SIZE)
    }

    /// Number of pages covered (a partially covered page counts fully).
    pub fn pages(&self) -> u64 {
        if self.bytes == 0 {
            0
        } else {
            self.end_page() - self.first_page()
        }
    }

    /// Whether the range contains the given address.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }

    /// Splits the range into `n` byte sub-ranges of (almost) equal size.
    /// The first `bytes % n` sub-ranges are one byte longer.
    pub fn split_even(&self, n: usize) -> Vec<VirtRange> {
        assert!(n > 0, "cannot split into zero parts");
        let n64 = n as u64;
        let base_len = self.bytes / n64;
        let remainder = self.bytes % n64;
        let mut out = Vec::with_capacity(n);
        let mut cursor = self.base;
        for i in 0..n64 {
            let len = base_len + u64::from(i < remainder);
            out.push(VirtRange::new(cursor, len));
            cursor += len;
        }
        out
    }

    /// The sub-range covering bytes `[offset, offset + len)` of this range.
    pub fn subrange(&self, offset: u64, len: u64) -> VirtRange {
        assert!(offset + len <= self.bytes, "subrange out of bounds");
        VirtRange::new(self.base + offset, len)
    }
}

/// Physical backing of a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageLocation {
    /// Virtual memory that has been reserved but not yet backed by physical
    /// memory (no first touch yet).
    Unbacked,
    /// Backed by the DRAM of the given socket.
    Socket(SocketId),
}

impl PageLocation {
    /// The socket, if the page is backed.
    pub fn socket(&self) -> Option<SocketId> {
        match self {
            PageLocation::Unbacked => None,
            PageLocation::Socket(s) => Some(*s),
        }
    }
}

/// Placement policy for a new allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocPolicy {
    /// Back every page with memory of one socket (fails over to the least
    /// loaded socket if that socket is exhausted, mirroring first-touch
    /// behaviour under memory pressure).
    OnSocket(SocketId),
    /// Distribute pages round-robin over the given sockets.
    Interleaved(Vec<SocketId>),
    /// Reserve virtual memory without backing it; pages are backed lazily by
    /// [`MemoryManager::touch`].
    FirstTouch,
}

/// Placement of a run of pages.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Placement {
    Unbacked,
    Socket(SocketId),
    /// Round-robin over `sockets`, anchored at absolute page index
    /// `anchor_page` so that splitting a run does not change page locations.
    Interleaved {
        sockets: Vec<SocketId>,
        anchor_page: u64,
    },
}

impl Placement {
    fn location_of(&self, page: u64) -> PageLocation {
        match self {
            Placement::Unbacked => PageLocation::Unbacked,
            Placement::Socket(s) => PageLocation::Socket(*s),
            Placement::Interleaved { sockets, anchor_page } => {
                let idx = (page - anchor_page) as usize % sockets.len();
                PageLocation::Socket(sockets[idx])
            }
        }
    }
}

/// A run of consecutively allocated pages sharing one placement rule.
#[derive(Debug, Clone)]
struct Segment {
    base_page: u64,
    pages: u64,
    placement: Placement,
}

impl Segment {
    fn end_page(&self) -> u64 {
        self.base_page + self.pages
    }
}

/// A run-length encoded answer to "where do these pages live?".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocationRun {
    /// Absolute index of the first page of the run.
    pub first_page: u64,
    /// Number of consecutive pages sharing the location.
    pub pages: u64,
    /// Where those pages are backed.
    pub location: PageLocation,
}

/// The virtual memory manager: a placement ledger for every allocation made on
/// the modelled machine.
#[derive(Debug, Clone)]
pub struct MemoryManager {
    sockets: usize,
    capacity_pages: u64,
    used_pages: Vec<u64>,
    segments: BTreeMap<u64, Segment>,
    next_page: u64,
    rr_cursor: usize,
}

impl MemoryManager {
    /// Creates a memory manager for the given topology.
    pub fn new(topology: &Topology) -> Self {
        MemoryManager {
            sockets: topology.socket_count(),
            capacity_pages: topology.pages_per_socket(),
            used_pages: vec![0; topology.socket_count()],
            segments: BTreeMap::new(),
            // Start away from address zero so null-ish addresses are invalid.
            next_page: 16,
            rr_cursor: 0,
        }
    }

    /// Number of sockets known to the manager.
    pub fn socket_count(&self) -> usize {
        self.sockets
    }

    /// Per-socket DRAM capacity in pages.
    pub fn capacity_pages(&self) -> u64 {
        self.capacity_pages
    }

    /// Pages currently backed on each socket.
    pub fn used_pages(&self) -> &[u64] {
        &self.used_pages
    }

    /// Bytes currently backed on each socket.
    pub fn used_bytes(&self) -> Vec<u64> {
        self.used_pages.iter().map(|p| p * PAGE_SIZE).collect()
    }

    /// Total bytes currently backed across all sockets.
    pub fn total_used_bytes(&self) -> u64 {
        self.used_pages.iter().sum::<u64>() * PAGE_SIZE
    }

    fn validate_socket(&self, s: SocketId) -> Result<()> {
        if s.index() >= self.sockets {
            Err(NumaSimError::InvalidSocket { socket: s.index(), sockets: self.sockets })
        } else {
            Ok(())
        }
    }

    fn validate_sockets(&self, sockets: &[SocketId]) -> Result<()> {
        if sockets.is_empty() {
            return Err(NumaSimError::EmptySocketSet);
        }
        for s in sockets {
            self.validate_socket(*s)?;
        }
        Ok(())
    }

    fn free_pages_on(&self, socket: SocketId) -> u64 {
        self.capacity_pages.saturating_sub(self.used_pages[socket.index()])
    }

    /// The socket with the most free pages (used as a first-touch fallback
    /// when the requested socket is exhausted).
    fn least_loaded_socket(&self) -> SocketId {
        let idx = self
            .used_pages
            .iter()
            .enumerate()
            .min_by_key(|(_, used)| **used)
            .map(|(i, _)| i)
            .unwrap_or(0);
        SocketId(idx as u16)
    }

    fn charge(&mut self, socket: SocketId, pages: u64) -> Result<()> {
        if self.free_pages_on(socket) < pages {
            return Err(NumaSimError::OutOfMemory {
                socket: socket.index(),
                requested_pages: pages,
                available_pages: self.free_pages_on(socket),
            });
        }
        self.used_pages[socket.index()] += pages;
        Ok(())
    }

    fn refund(&mut self, socket: SocketId, pages: u64) {
        let used = &mut self.used_pages[socket.index()];
        *used = used.saturating_sub(pages);
    }

    /// Allocates `bytes` of virtual memory with the given placement policy and
    /// returns its address range.
    pub fn allocate(&mut self, bytes: u64, policy: AllocPolicy) -> Result<VirtRange> {
        if bytes == 0 {
            return Err(NumaSimError::EmptyRange);
        }
        let pages = bytes.div_ceil(PAGE_SIZE);
        let base_page = self.next_page;

        let placement = match policy {
            AllocPolicy::OnSocket(s) => {
                self.validate_socket(s)?;
                let target =
                    if self.free_pages_on(s) >= pages { s } else { self.least_loaded_socket() };
                self.charge(target, pages)?;
                Placement::Socket(target)
            }
            AllocPolicy::Interleaved(sockets) => {
                self.validate_sockets(&sockets)?;
                // Charge pages round-robin, anchored at the base page.
                for p in 0..pages {
                    let s = sockets[(p % sockets.len() as u64) as usize];
                    self.charge(s, 1)?;
                }
                Placement::Interleaved { sockets, anchor_page: base_page }
            }
            AllocPolicy::FirstTouch => Placement::Unbacked,
        };

        self.segments.insert(base_page, Segment { base_page, pages, placement });
        self.next_page = base_page + pages;
        Ok(VirtRange::new(base_page * PAGE_SIZE, bytes))
    }

    /// Allocates `bytes` round-robin *across allocations* (not pages): the
    /// whole allocation lands on one socket and consecutive calls rotate the
    /// socket. This is the building block of the paper's RR data placement.
    pub fn allocate_round_robin(&mut self, bytes: u64) -> Result<(VirtRange, SocketId)> {
        let socket = SocketId((self.rr_cursor % self.sockets) as u16);
        self.rr_cursor += 1;
        let range = self.allocate(bytes, AllocPolicy::OnSocket(socket))?;
        // The allocation may have failed over to another socket under memory
        // pressure; report where it really landed.
        let actual = match self.page_location(range.base)? {
            PageLocation::Socket(s) => s,
            PageLocation::Unbacked => socket,
        };
        Ok((range, actual))
    }

    /// Backs any still-unbacked pages of `range` with memory of `socket`
    /// (models the first page fault under the first-touch policy).
    pub fn touch(&mut self, range: VirtRange, socket: SocketId) -> Result<()> {
        self.validate_socket(socket)?;
        self.apply_to_range(range, |mgr, seg| {
            if seg.placement == Placement::Unbacked {
                mgr.charge(socket, seg.pages)?;
                seg.placement = Placement::Socket(socket);
            }
            Ok(())
        })
    }

    /// Moves every page of `range` to `target`, like Linux's `move_pages`.
    pub fn move_range(&mut self, range: VirtRange, target: SocketId) -> Result<()> {
        self.validate_socket(target)?;
        self.apply_to_range(range, |mgr, seg| {
            // Refund the old location.
            for p in seg.base_page..seg.end_page() {
                if let PageLocation::Socket(s) = seg.placement.location_of(p) {
                    mgr.refund(s, 1);
                }
            }
            mgr.charge(target, seg.pages)?;
            seg.placement = Placement::Socket(target);
            Ok(())
        })
    }

    /// Re-interleaves every page of `range` round-robin across `sockets`.
    pub fn interleave_range(&mut self, range: VirtRange, sockets: &[SocketId]) -> Result<()> {
        self.validate_sockets(sockets)?;
        let sockets = sockets.to_vec();
        self.apply_to_range(range, |mgr, seg| {
            for p in seg.base_page..seg.end_page() {
                if let PageLocation::Socket(s) = seg.placement.location_of(p) {
                    mgr.refund(s, 1);
                }
            }
            for p in 0..seg.pages {
                let s = sockets[((seg.base_page + p) % sockets.len() as u64) as usize];
                mgr.charge(s, 1)?;
            }
            seg.placement = Placement::Interleaved { sockets: sockets.clone(), anchor_page: 0 };
            Ok(())
        })
    }

    /// Releases an allocation, refunding its pages.
    pub fn free(&mut self, range: VirtRange) -> Result<()> {
        self.apply_to_range(range, |mgr, seg| {
            for p in seg.base_page..seg.end_page() {
                if let PageLocation::Socket(s) = seg.placement.location_of(p) {
                    mgr.refund(s, 1);
                }
            }
            seg.placement = Placement::Unbacked;
            Ok(())
        })?;
        // Remove unbacked segments fully contained in the range.
        let first = range.first_page();
        let end = range.end_page();
        let keys: Vec<u64> = self
            .segments
            .range(..)
            .filter(|(_, seg)| {
                seg.base_page >= first
                    && seg.end_page() <= end
                    && seg.placement == Placement::Unbacked
            })
            .map(|(k, _)| *k)
            .collect();
        for k in keys {
            self.segments.remove(&k);
        }
        Ok(())
    }

    /// Location of the page containing `addr`.
    pub fn page_location(&self, addr: u64) -> Result<PageLocation> {
        let page = addr / PAGE_SIZE;
        let (_, seg) =
            self.segments.range(..=page).next_back().ok_or(NumaSimError::UnknownRange { addr })?;
        if page >= seg.end_page() {
            return Err(NumaSimError::UnknownRange { addr });
        }
        Ok(seg.placement.location_of(page))
    }

    /// Socket of the page containing `addr`, if it is backed.
    pub fn socket_of(&self, addr: u64) -> Result<Option<SocketId>> {
        Ok(self.page_location(addr)?.socket())
    }

    /// Run-length encoded locations of every page of `range`, in address
    /// order. This is what the PSM uses when adding ranges ("calls
    /// `move_pages` on Linux, not to move them but to find out their physical
    /// location").
    pub fn page_locations(&self, range: VirtRange) -> Result<Vec<LocationRun>> {
        if range.bytes == 0 {
            return Err(NumaSimError::EmptyRange);
        }
        let first = range.first_page();
        let end = range.end_page();
        let mut runs: Vec<LocationRun> = Vec::new();
        let mut page = first;
        while page < end {
            let (_, seg) = self
                .segments
                .range(..=page)
                .next_back()
                .ok_or(NumaSimError::UnknownRange { addr: page * PAGE_SIZE })?;
            if page >= seg.end_page() {
                return Err(NumaSimError::UnknownRange { addr: page * PAGE_SIZE });
            }
            let seg_end = seg.end_page().min(end);
            while page < seg_end {
                let loc = seg.placement.location_of(page);
                match runs.last_mut() {
                    Some(run) if run.location == loc && run.first_page + run.pages == page => {
                        run.pages += 1
                    }
                    _ => runs.push(LocationRun { first_page: page, pages: 1, location: loc }),
                }
                page += 1;
            }
        }
        Ok(runs)
    }

    /// Number of backed pages of `range` on each socket.
    pub fn pages_per_socket(&self, range: VirtRange) -> Result<Vec<u64>> {
        let mut counts = vec![0u64; self.sockets];
        for run in self.page_locations(range)? {
            if let PageLocation::Socket(s) = run.location {
                counts[s.index()] += run.pages;
            }
        }
        Ok(counts)
    }

    /// Splits segments at the page boundaries of `range` and applies `f` to
    /// every segment fully inside the range.
    fn apply_to_range<F>(&mut self, range: VirtRange, mut f: F) -> Result<()>
    where
        F: FnMut(&mut Self, &mut Segment) -> Result<()>,
    {
        if range.bytes == 0 {
            return Err(NumaSimError::EmptyRange);
        }
        let first = range.first_page();
        let end = range.end_page();
        self.split_at(first)?;
        self.split_at(end)?;

        let keys: Vec<u64> = self.segments.range(first..end).map(|(k, _)| *k).collect();
        if keys.is_empty() {
            return Err(NumaSimError::UnknownRange { addr: range.base });
        }
        // Verify the range is fully covered before mutating anything.
        let mut cursor = first;
        for k in &keys {
            let seg = &self.segments[k];
            if seg.base_page != cursor {
                return Err(NumaSimError::UnknownRange { addr: cursor * PAGE_SIZE });
            }
            cursor = seg.end_page();
        }
        if cursor < end {
            return Err(NumaSimError::UnknownRange { addr: cursor * PAGE_SIZE });
        }

        for k in keys {
            let mut seg = self.segments.remove(&k).expect("segment disappeared");
            let res = f(self, &mut seg);
            self.segments.insert(k, seg);
            res?;
        }
        Ok(())
    }

    /// Ensures `page` is a segment boundary (splitting the covering segment if
    /// necessary). A page outside any segment is fine — the later coverage
    /// check reports it.
    fn split_at(&mut self, page: u64) -> Result<()> {
        let covering = self
            .segments
            .range(..=page)
            .next_back()
            .map(|(k, seg)| (*k, seg.base_page, seg.end_page()));
        if let Some((key, base, end)) = covering {
            if page > base && page < end {
                let seg = self.segments.remove(&key).expect("segment disappeared");
                let left_pages = page - base;
                let left = Segment {
                    base_page: base,
                    pages: left_pages,
                    placement: seg.placement.clone(),
                };
                let right = Segment {
                    base_page: page,
                    pages: seg.pages - left_pages,
                    placement: seg.placement,
                };
                self.segments.insert(left.base_page, left);
                self.segments.insert(right.base_page, right);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> MemoryManager {
        MemoryManager::new(&Topology::four_socket_ivybridge_ex())
    }

    #[test]
    fn virt_range_page_math() {
        let r = VirtRange::new(PAGE_SIZE, PAGE_SIZE * 3 + 1);
        assert_eq!(r.first_page(), 1);
        assert_eq!(r.pages(), 4);
        assert!(r.contains(PAGE_SIZE));
        assert!(!r.contains(PAGE_SIZE * 5));
    }

    #[test]
    fn split_even_covers_whole_range() {
        let r = VirtRange::new(1000, 10_001);
        let parts = r.split_even(4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.iter().map(|p| p.bytes).sum::<u64>(), r.bytes);
        assert_eq!(parts[0].base, r.base);
        assert_eq!(parts.last().unwrap().end(), r.end());
        for w in parts.windows(2) {
            assert_eq!(w[0].end(), w[1].base);
        }
    }

    #[test]
    fn allocate_on_socket_backs_all_pages_there() {
        let mut m = mgr();
        let r = m.allocate(10 * PAGE_SIZE, AllocPolicy::OnSocket(SocketId(2))).unwrap();
        let runs = m.page_locations(r).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].location, PageLocation::Socket(SocketId(2)));
        assert_eq!(runs[0].pages, 10);
        assert_eq!(m.used_pages()[2], 10);
    }

    #[test]
    fn allocate_interleaved_round_robins_pages() {
        let mut m = mgr();
        let sockets: Vec<SocketId> = (0..4).map(SocketId).collect();
        let r = m.allocate(8 * PAGE_SIZE, AllocPolicy::Interleaved(sockets)).unwrap();
        let per_socket = m.pages_per_socket(r).unwrap();
        assert_eq!(per_socket, vec![2, 2, 2, 2]);
        // Consecutive pages alternate sockets.
        let runs = m.page_locations(r).unwrap();
        assert_eq!(runs.len(), 8);
    }

    #[test]
    fn first_touch_allocation_is_unbacked_until_touched() {
        let mut m = mgr();
        let r = m.allocate(4 * PAGE_SIZE, AllocPolicy::FirstTouch).unwrap();
        assert_eq!(m.page_location(r.base).unwrap(), PageLocation::Unbacked);
        assert_eq!(m.total_used_bytes(), 0);
        m.touch(r, SocketId(1)).unwrap();
        assert_eq!(m.page_location(r.base).unwrap(), PageLocation::Socket(SocketId(1)));
        assert_eq!(m.used_pages()[1], 4);
    }

    #[test]
    fn move_range_relocates_pages_and_accounting() {
        let mut m = mgr();
        let r = m.allocate(6 * PAGE_SIZE, AllocPolicy::OnSocket(SocketId(0))).unwrap();
        m.move_range(r, SocketId(3)).unwrap();
        assert_eq!(m.used_pages()[0], 0);
        assert_eq!(m.used_pages()[3], 6);
        assert_eq!(m.page_location(r.base).unwrap(), PageLocation::Socket(SocketId(3)));
    }

    #[test]
    fn move_subrange_splits_segment() {
        let mut m = mgr();
        let r = m.allocate(10 * PAGE_SIZE, AllocPolicy::OnSocket(SocketId(0))).unwrap();
        // Move pages 3..7 to socket 1.
        let sub = VirtRange::new(r.base + 3 * PAGE_SIZE, 4 * PAGE_SIZE);
        m.move_range(sub, SocketId(1)).unwrap();
        let runs = m.page_locations(r).unwrap();
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0].pages, 3);
        assert_eq!(runs[0].location, PageLocation::Socket(SocketId(0)));
        assert_eq!(runs[1].pages, 4);
        assert_eq!(runs[1].location, PageLocation::Socket(SocketId(1)));
        assert_eq!(runs[2].pages, 3);
        assert_eq!(runs[2].location, PageLocation::Socket(SocketId(0)));
        assert_eq!(m.used_pages()[0], 6);
        assert_eq!(m.used_pages()[1], 4);
    }

    #[test]
    fn interleave_range_redistributes_evenly() {
        let mut m = mgr();
        let r = m.allocate(16 * PAGE_SIZE, AllocPolicy::OnSocket(SocketId(0))).unwrap();
        let sockets: Vec<SocketId> = (0..4).map(SocketId).collect();
        m.interleave_range(r, &sockets).unwrap();
        let per = m.pages_per_socket(r).unwrap();
        assert_eq!(per.iter().sum::<u64>(), 16);
        for count in per {
            assert_eq!(count, 4);
        }
    }

    #[test]
    fn free_refunds_pages() {
        let mut m = mgr();
        let r = m.allocate(5 * PAGE_SIZE, AllocPolicy::OnSocket(SocketId(1))).unwrap();
        assert_eq!(m.used_pages()[1], 5);
        m.free(r).unwrap();
        assert_eq!(m.used_pages()[1], 0);
    }

    #[test]
    fn round_robin_allocations_rotate_sockets() {
        let mut m = mgr();
        let mut seen = Vec::new();
        for _ in 0..8 {
            let (_, s) = m.allocate_round_robin(PAGE_SIZE).unwrap();
            seen.push(s.index());
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn unknown_addresses_are_rejected() {
        let m = mgr();
        assert!(matches!(m.page_location(0xdead_beef), Err(NumaSimError::UnknownRange { .. })));
    }

    #[test]
    fn allocation_fails_over_when_socket_full() {
        let topo = Topology::custom_uniform(
            2,
            crate::topology::SocketSpec {
                cores: 1,
                threads_per_core: 1,
                local_bandwidth_gibs: 10.0,
                memory_gib: 4.0 * PAGE_SIZE as f64 / (1u64 << 30) as f64, // 4 pages
                per_context_stream_gibs: 5.0,
                context_ops_per_sec: 1e9,
                memory_level_parallelism: 4.0,
                frequency_ghz: 2.0,
            },
            crate::topology::HopProfile {
                local_latency_ns: 100.0,
                one_hop_latency_ns: 200.0,
                max_hop_latency_ns: 200.0,
                one_hop_bandwidth_gibs: 5.0,
                max_hop_bandwidth_gibs: 5.0,
            },
        );
        let mut m = MemoryManager::new(&topo);
        assert_eq!(m.capacity_pages(), 4);
        // Fill socket 0.
        m.allocate(4 * PAGE_SIZE, AllocPolicy::OnSocket(SocketId(0))).unwrap();
        // Next allocation targeted at socket 0 falls over to socket 1.
        let r = m.allocate(2 * PAGE_SIZE, AllocPolicy::OnSocket(SocketId(0))).unwrap();
        assert_eq!(m.page_location(r.base).unwrap(), PageLocation::Socket(SocketId(1)));
        // When everything is full we finally get an error.
        m.allocate(2 * PAGE_SIZE, AllocPolicy::OnSocket(SocketId(1))).unwrap();
        assert!(m.allocate(2 * PAGE_SIZE, AllocPolicy::OnSocket(SocketId(1))).is_err());
    }

    #[test]
    fn zero_byte_allocation_is_an_error() {
        let mut m = mgr();
        assert_eq!(m.allocate(0, AllocPolicy::FirstTouch), Err(NumaSimError::EmptyRange));
    }
}
