//! A complete virtual NUMA machine.
//!
//! [`Machine`] bundles the pieces higher layers need to execute a workload on
//! a modelled server: the [`Topology`], a [`MemoryManager`] tracking where
//! every allocation lives, a [`BandwidthSolver`] and [`LatencyModel`] for
//! costing work, [`HwCounters`] for the observable metrics, and a
//! [`VirtualClock`].

use crate::bandwidth::BandwidthSolver;
use crate::counters::HwCounters;
use crate::latency::LatencyModel;
use crate::memman::MemoryManager;
use crate::topology::Topology;

/// A monotonically advancing virtual clock, in seconds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VirtualClock {
    now: f64,
}

impl VirtualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        VirtualClock { now: 0.0 }
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances the clock by `dt` seconds (`dt` must not be negative).
    pub fn advance(&mut self, dt: f64) {
        assert!(dt >= 0.0, "time cannot go backwards (dt = {dt})");
        self.now += dt;
    }

    /// Resets the clock to zero.
    pub fn reset(&mut self) {
        self.now = 0.0;
    }
}

/// A virtual NUMA machine: topology, memory placement ledger, cost models,
/// counters and a clock.
#[derive(Debug, Clone)]
pub struct Machine {
    topology: Topology,
    memory: MemoryManager,
    bandwidth: BandwidthSolver,
    latency: LatencyModel,
    counters: HwCounters,
    clock: VirtualClock,
}

impl Machine {
    /// Builds a machine for the given topology.
    pub fn new(topology: Topology) -> Self {
        let memory = MemoryManager::new(&topology);
        let bandwidth = BandwidthSolver::new(&topology);
        let latency = LatencyModel::new(&topology);
        let counters = HwCounters::new(&topology);
        Machine { topology, memory, bandwidth, latency, counters, clock: VirtualClock::new() }
    }

    /// The machine's topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The memory placement ledger.
    pub fn memory(&self) -> &MemoryManager {
        &self.memory
    }

    /// Mutable access to the memory placement ledger.
    pub fn memory_mut(&mut self) -> &mut MemoryManager {
        &mut self.memory
    }

    /// The bandwidth contention model.
    pub fn bandwidth(&self) -> &BandwidthSolver {
        &self.bandwidth
    }

    /// The latency model.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// The accumulated hardware counters.
    pub fn counters(&self) -> &HwCounters {
        &self.counters
    }

    /// Mutable access to the hardware counters.
    pub fn counters_mut(&mut self) -> &mut HwCounters {
        &mut self.counters
    }

    /// The virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Mutable access to the virtual clock.
    pub fn clock_mut(&mut self) -> &mut VirtualClock {
        &mut self.clock
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// Resets counters and clock (keeps allocations).
    pub fn reset_measurement(&mut self) {
        self.counters.reset();
        self.clock.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memman::AllocPolicy;
    use crate::topology::SocketId;

    #[test]
    fn clock_advances_monotonically() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now(), 0.0);
        c.advance(0.5);
        c.advance(0.25);
        assert!((c.now() - 0.75).abs() < 1e-12);
        c.reset();
        assert_eq!(c.now(), 0.0);
    }

    #[test]
    #[should_panic(expected = "time cannot go backwards")]
    fn clock_rejects_negative_steps() {
        VirtualClock::new().advance(-1.0);
    }

    #[test]
    fn machine_bundles_consistent_components() {
        let mut m = Machine::new(Topology::four_socket_ivybridge_ex());
        assert_eq!(m.topology().socket_count(), 4);
        assert_eq!(m.bandwidth().socket_count(), 4);
        let r = m.memory_mut().allocate(8192, AllocPolicy::OnSocket(SocketId(1))).unwrap();
        assert_eq!(m.memory().socket_of(r.base).unwrap(), Some(SocketId(1)));
    }

    #[test]
    fn reset_measurement_clears_counters_but_not_memory() {
        let mut m = Machine::new(Topology::four_socket_ivybridge_ex());
        let r = m.memory_mut().allocate(8192, AllocPolicy::OnSocket(SocketId(0))).unwrap();
        m.counters_mut().record_busy(SocketId(0), 1.0);
        m.clock_mut().advance(1.0);
        m.reset_measurement();
        assert_eq!(m.now(), 0.0);
        assert_eq!(m.counters().cpu_load_percent(), 0.0);
        assert!(m.memory().socket_of(r.base).unwrap().is_some());
    }
}
