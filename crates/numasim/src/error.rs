//! Error types for the virtual NUMA machine.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NumaSimError>;

/// Errors produced by the virtual NUMA machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NumaSimError {
    /// A socket id was out of range for the topology.
    InvalidSocket {
        /// The offending socket index.
        socket: usize,
        /// Number of sockets in the topology.
        sockets: usize,
    },
    /// A hardware context id was out of range for the topology.
    InvalidHwContext {
        /// The offending hardware context index.
        context: usize,
        /// Number of hardware contexts in the topology.
        contexts: usize,
    },
    /// An allocation request could not be satisfied because the target
    /// socket(s) ran out of modelled physical memory.
    OutOfMemory {
        /// Socket that ran out of memory.
        socket: usize,
        /// Pages requested.
        requested_pages: u64,
        /// Pages still available on that socket.
        available_pages: u64,
    },
    /// An address or range was not (fully) known to the memory manager.
    UnknownRange {
        /// Base address of the offending range.
        addr: u64,
    },
    /// A virtual range overlapped an existing allocation.
    RangeOverlap {
        /// Base address of the offending range.
        addr: u64,
    },
    /// An empty socket list was supplied where at least one socket is needed.
    EmptySocketSet,
    /// A zero-sized allocation or range was requested.
    EmptyRange,
}

impl fmt::Display for NumaSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumaSimError::InvalidSocket { socket, sockets } => {
                write!(f, "socket {socket} out of range (topology has {sockets} sockets)")
            }
            NumaSimError::InvalidHwContext { context, contexts } => {
                write!(
                    f,
                    "hardware context {context} out of range (topology has {contexts} contexts)"
                )
            }
            NumaSimError::OutOfMemory { socket, requested_pages, available_pages } => write!(
                f,
                "socket {socket} out of memory: requested {requested_pages} pages, \
                 {available_pages} available"
            ),
            NumaSimError::UnknownRange { addr } => {
                write!(f, "address {addr:#x} is not tracked by the memory manager")
            }
            NumaSimError::RangeOverlap { addr } => {
                write!(f, "range at {addr:#x} overlaps an existing allocation")
            }
            NumaSimError::EmptySocketSet => write!(f, "an empty socket set was supplied"),
            NumaSimError::EmptyRange => write!(f, "a zero-sized range was supplied"),
        }
    }
}

impl std::error::Error for NumaSimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_fields() {
        let e = NumaSimError::InvalidSocket { socket: 7, sockets: 4 };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('4'));

        let e = NumaSimError::OutOfMemory { socket: 2, requested_pages: 10, available_pages: 3 };
        let s = e.to_string();
        assert!(s.contains("socket 2"));
        assert!(s.contains("10"));
        assert!(s.contains('3'));

        let e = NumaSimError::UnknownRange { addr: 0x1000 };
        assert!(e.to_string().contains("0x1000"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(NumaSimError::EmptyRange, NumaSimError::EmptyRange);
        assert_ne!(NumaSimError::EmptyRange, NumaSimError::EmptySocketSet);
    }
}
