//! Bandwidth contention model.
//!
//! Concurrent scans are memory-intensive: their speed is determined by how
//! much DRAM bandwidth each task obtains. On a NUMA machine three kinds of
//! resources can saturate independently (Section 2 of the paper):
//!
//! 1. the memory controllers of each socket,
//! 2. each inter-socket interconnect (QPI) link, and
//! 3. the total interconnect capacity of a socket (all its QPI links),
//!
//! and a single core can only consume a limited stream bandwidth by itself.
//! The cache-coherence protocol additionally injects traffic into the
//! interconnect — modestly for directory-based machines, and on *every* socket
//! for broadcast-snooping machines.
//!
//! [`BandwidthSolver`] computes a *generalized max-min fair* allocation of
//! bandwidth to a set of concurrent [`MemoryDemand`]s subject to those
//! capacities, using progressive filling: all unfrozen demands grow at the
//! same rate until some resource (or a demand's own cap) saturates, the
//! demands bottlenecked there are frozen, and the process repeats.

use crate::topology::{CoherenceProtocol, SocketId, Topology};

/// A single traffic stream: a task running on `cpu_socket` streaming data that
/// is physically backed on `mem_socket`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryDemand {
    /// Caller-provided identifier used to map rates back to tasks.
    pub id: u64,
    /// Socket whose core issues the accesses.
    pub cpu_socket: SocketId,
    /// Socket whose DRAM serves the accesses.
    pub mem_socket: SocketId,
    /// Upper bound on the rate this stream can consume by itself (GiB/s);
    /// usually the per-context streaming limit, divided among the task's
    /// concurrent streams.
    pub cap_gibs: f64,
    /// Number of identical streams this demand aggregates. The returned rate
    /// is *per stream*; resource consumption is multiplied by the weight.
    /// Aggregating identical `(cpu, mem)` classes keeps the solver cost
    /// independent of the number of concurrently running tasks.
    pub weight: f64,
}

impl MemoryDemand {
    /// A single stream from `mem_socket` to a core on `cpu_socket`.
    pub fn new(id: u64, cpu_socket: SocketId, mem_socket: SocketId, cap_gibs: f64) -> Self {
        MemoryDemand { id, cpu_socket, mem_socket, cap_gibs, weight: 1.0 }
    }

    /// An aggregate of `weight` identical streams.
    pub fn aggregated(
        id: u64,
        cpu_socket: SocketId,
        mem_socket: SocketId,
        cap_gibs: f64,
        weight: f64,
    ) -> Self {
        MemoryDemand { id, cpu_socket, mem_socket, cap_gibs, weight }
    }

    /// `true` if the stream crosses the interconnect.
    pub fn is_remote(&self) -> bool {
        self.cpu_socket != self.mem_socket
    }
}

/// The result of a bandwidth allocation: one rate (GiB/s) per demand, in the
/// same order the demands were passed in.
#[derive(Debug, Clone, PartialEq)]
pub struct RateAllocation {
    /// Attained rate of each demand in GiB/s.
    pub rates: Vec<f64>,
}

impl RateAllocation {
    /// Aggregate rate over all demands, GiB/s.
    pub fn total(&self) -> f64 {
        self.rates.iter().sum()
    }
}

/// Internal resource identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Resource {
    /// Memory controller of a socket.
    Mc(usize),
    /// Total interconnect capacity of a socket.
    Qpi(usize),
    /// A point-to-point path between two sockets (undirected).
    Pair(usize, usize),
}

/// Max-min fair bandwidth allocator for a fixed topology.
#[derive(Debug, Clone)]
pub struct BandwidthSolver {
    sockets: usize,
    mc_capacity: Vec<f64>,
    qpi_capacity: Vec<f64>,
    /// Capacity of the path between sockets i and j (i < j), flattened.
    pair_capacity: Vec<f64>,
    coherence: CoherenceProtocol,
    remote_mc_penalty: f64,
}

impl BandwidthSolver {
    /// Builds a solver for the given topology.
    pub fn new(topology: &Topology) -> Self {
        let sockets = topology.socket_count();
        let mc_capacity = vec![topology.socket.local_bandwidth_gibs; sockets];
        let qpi_capacity = vec![topology.socket_interconnect_gibs; sockets];
        let mut pair_capacity = vec![0.0; sockets * sockets];
        for i in 0..sockets {
            for j in 0..sockets {
                if i != j {
                    pair_capacity[i * sockets + j] =
                        topology.pair_bandwidth_gibs(SocketId(i as u16), SocketId(j as u16));
                }
            }
        }
        BandwidthSolver {
            sockets,
            mc_capacity,
            qpi_capacity,
            pair_capacity,
            coherence: topology.coherence,
            remote_mc_penalty: topology.remote_mc_penalty,
        }
    }

    #[inline]
    fn pair_index(&self, a: usize, b: usize) -> usize {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        lo * self.sockets + hi
    }

    /// Per-demand list of `(resource, load factor)` pairs: consuming one byte
    /// of the demand consumes `factor` bytes of the resource's capacity.
    fn loads_of(&self, d: &MemoryDemand) -> Vec<(Resource, f64)> {
        let mut loads = Vec::with_capacity(4 + self.sockets);
        let m = d.mem_socket.index();
        let c = d.cpu_socket.index();
        // Remote requests occupy the serving memory controller longer than
        // local ones (they interfere with local requests queuing up).
        let mc_factor = if m != c { 1.0 + self.remote_mc_penalty } else { 1.0 };
        loads.push((Resource::Mc(m), mc_factor));
        match self.coherence {
            CoherenceProtocol::Directory { overhead_factor } => {
                if m != c {
                    let remote_factor = 1.0 + overhead_factor;
                    loads.push((Resource::Pair(m, c), remote_factor));
                    loads.push((Resource::Qpi(m), remote_factor));
                    loads.push((Resource::Qpi(c), remote_factor));
                } else {
                    // Directory lookups generate a trickle of interconnect
                    // traffic even for local accesses.
                    loads.push((Resource::Qpi(c), overhead_factor * 0.5));
                }
            }
            CoherenceProtocol::BroadcastSnoop { snoop_factor } => {
                if m != c {
                    loads.push((Resource::Pair(m, c), 1.0));
                    loads.push((Resource::Qpi(m), 1.0));
                    loads.push((Resource::Qpi(c), 1.0));
                }
                // Snoops are broadcast to every socket regardless of whether
                // the access is local or remote.
                for s in 0..self.sockets {
                    loads.push((Resource::Qpi(s), snoop_factor));
                }
            }
        }
        loads
    }

    fn capacity_of(&self, r: Resource) -> f64 {
        match r {
            Resource::Mc(s) => self.mc_capacity[s],
            Resource::Qpi(s) => self.qpi_capacity[s],
            Resource::Pair(a, b) => self.pair_capacity[self.pair_index(a, b)],
        }
    }

    fn resource_slot(&self, r: Resource) -> usize {
        match r {
            Resource::Mc(s) => s,
            Resource::Qpi(s) => self.sockets + s,
            Resource::Pair(a, b) => 2 * self.sockets + self.pair_index(a, b),
        }
    }

    /// Computes the max-min fair rate allocation for `demands`.
    ///
    /// Returns one rate per demand (GiB/s), in input order. Demands with a
    /// non-positive cap receive a rate of zero.
    pub fn solve(&self, demands: &[MemoryDemand]) -> RateAllocation {
        let n = demands.len();
        let mut rates = vec![0.0f64; n];
        if n == 0 {
            return RateAllocation { rates };
        }

        let n_resources = 2 * self.sockets + self.sockets * self.sockets;
        let mut remaining = vec![f64::INFINITY; n_resources];
        let mut used_resource = vec![false; n_resources];

        // Precompute loads (scaled by the demand's weight) and initialise
        // remaining capacity only for resources that are actually used.
        let loads: Vec<Vec<(usize, f64)>> = demands
            .iter()
            .map(|d| {
                let weight = d.weight.max(0.0);
                self.loads_of(d)
                    .into_iter()
                    .map(|(r, f)| {
                        let slot = self.resource_slot(r);
                        if !used_resource[slot] {
                            used_resource[slot] = true;
                            remaining[slot] = self.capacity_of(r);
                        }
                        (slot, f * weight)
                    })
                    .collect()
            })
            .collect();

        let mut active: Vec<bool> =
            demands.iter().map(|d| d.cap_gibs > 0.0 && d.weight > 0.0).collect();
        let mut active_count = active.iter().filter(|a| **a).count();

        // Progressive filling.
        let mut guard = 0usize;
        while active_count > 0 {
            guard += 1;
            if guard > n + n_resources + 8 {
                // Should not happen: every iteration freezes at least one
                // demand. Bail out defensively rather than loop forever.
                break;
            }

            // Aggregate load each resource sees from active demands.
            let mut resource_load = vec![0.0f64; n_resources];
            for (i, dl) in loads.iter().enumerate() {
                if !active[i] {
                    continue;
                }
                for &(slot, f) in dl {
                    resource_load[slot] += f;
                }
            }

            // Largest uniform increment possible before something saturates.
            let mut delta = f64::INFINITY;
            for slot in 0..n_resources {
                if resource_load[slot] > 0.0 {
                    delta = delta.min(remaining[slot] / resource_load[slot]);
                }
            }
            for (i, d) in demands.iter().enumerate() {
                if active[i] {
                    delta = delta.min(d.cap_gibs - rates[i]);
                }
            }
            if !delta.is_finite() || delta < 0.0 {
                break;
            }

            // Apply the increment.
            for (i, dl) in loads.iter().enumerate() {
                if !active[i] {
                    continue;
                }
                rates[i] += delta;
                for &(slot, f) in dl {
                    remaining[slot] -= delta * f;
                }
            }

            // Freeze demands that hit their own cap or a saturated resource.
            const EPS: f64 = 1e-9;
            let mut frozen_any = false;
            for (i, d) in demands.iter().enumerate() {
                if !active[i] {
                    continue;
                }
                let capped = rates[i] >= d.cap_gibs - EPS;
                let bottlenecked = loads[i].iter().any(|&(slot, _)| remaining[slot] <= EPS);
                if capped || bottlenecked {
                    active[i] = false;
                    active_count -= 1;
                    frozen_any = true;
                }
            }
            if !frozen_any && delta <= EPS {
                break;
            }
        }

        RateAllocation { rates }
    }

    /// Number of sockets the solver was built for.
    pub fn socket_count(&self) -> usize {
        self.sockets
    }

    /// The coherence protocol in effect.
    pub fn coherence(&self) -> CoherenceProtocol {
        self.coherence
    }

    /// Interconnect traffic (in bytes) generated by transferring `data_bytes`
    /// for the given demand: `(qpi_data_bytes, qpi_total_bytes)`.
    ///
    /// Data traffic crosses the interconnect only for remote accesses;
    /// coherence traffic is added according to the protocol (and, for
    /// broadcast snooping, is generated even by local accesses).
    pub fn qpi_traffic_for(&self, demand: &MemoryDemand, data_bytes: f64) -> (f64, f64) {
        let data = if demand.is_remote() { data_bytes } else { 0.0 };
        let coherence = match self.coherence {
            CoherenceProtocol::Directory { overhead_factor } => {
                if demand.is_remote() {
                    data_bytes * overhead_factor
                } else {
                    data_bytes * overhead_factor * 0.5
                }
            }
            CoherenceProtocol::BroadcastSnoop { snoop_factor } => {
                data_bytes * snoop_factor * self.sockets as f64
            }
        };
        (data, data + coherence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solver4() -> BandwidthSolver {
        BandwidthSolver::new(&Topology::four_socket_ivybridge_ex())
    }

    fn demand(id: u64, cpu: u16, mem: u16, cap: f64) -> MemoryDemand {
        MemoryDemand::new(id, SocketId(cpu), SocketId(mem), cap)
    }

    #[test]
    fn weighted_demand_equals_many_identical_demands() {
        let s = solver4();
        // 30 separate local streams on socket 0 ...
        let individual: Vec<_> = (0..30).map(|i| demand(i, 0, 0, 6.0)).collect();
        let individual_rate = s.solve(&individual).rates[0];
        // ... must receive the same per-stream rate as one aggregated demand
        // of weight 30.
        let aggregated = vec![MemoryDemand::aggregated(0, SocketId(0), SocketId(0), 6.0, 30.0)];
        let aggregated_rate = s.solve(&aggregated).rates[0];
        assert!((individual_rate - aggregated_rate).abs() < 1e-6);
    }

    #[test]
    fn empty_demand_set_yields_empty_allocation() {
        let s = solver4();
        assert!(s.solve(&[]).rates.is_empty());
    }

    #[test]
    fn single_local_stream_is_capped_by_the_core() {
        let s = solver4();
        let alloc = s.solve(&[demand(0, 0, 0, 6.0)]);
        assert!((alloc.rates[0] - 6.0).abs() < 1e-6, "one core cannot use the whole MC");
    }

    #[test]
    fn many_local_streams_saturate_the_memory_controller() {
        let s = solver4();
        // 30 contexts of socket 0 all streaming local data.
        let demands: Vec<_> = (0..30).map(|i| demand(i, 0, 0, 6.0)).collect();
        let alloc = s.solve(&demands);
        let total = alloc.total();
        assert!(total <= 65.0 + 1e-6);
        assert!(total > 60.0, "30 streams must saturate the 65 GiB/s controller, got {total}");
        // Fair sharing: all rates equal.
        for r in &alloc.rates {
            assert!((r - alloc.rates[0]).abs() < 1e-6);
        }
    }

    #[test]
    fn remote_streams_are_limited_by_the_interconnect() {
        let s = solver4();
        // 30 contexts on socket 1 streaming from socket 0: the 8.8 GiB/s QPI
        // pair bandwidth is the bottleneck, not the 65 GiB/s MC.
        let demands: Vec<_> = (0..30).map(|i| demand(i, 1, 0, 6.0)).collect();
        let total = s.solve(&demands).total();
        assert!(total < 9.0, "remote traffic must be capped by the QPI pair, got {total}");
        assert!(total > 7.0);
    }

    #[test]
    fn local_beats_remote_by_roughly_the_paper_factor() {
        // The 5x Figure 1 effect: all sockets streaming locally vs. all
        // sockets streaming from remote sockets.
        let s = solver4();
        let mut local = Vec::new();
        let mut remote = Vec::new();
        let mut id = 0;
        for sock in 0..4u16 {
            for _ in 0..30 {
                local.push(demand(id, sock, sock, 6.0));
                // Remote: read from the next socket over.
                remote.push(demand(id, sock, (sock + 1) % 4, 6.0));
                id += 1;
            }
        }
        let local_total = s.solve(&local).total();
        let remote_total = s.solve(&remote).total();
        let ratio = local_total / remote_total;
        assert!(
            ratio > 3.0 && ratio < 10.0,
            "local/remote throughput ratio should be around 5x, got {ratio:.1} \
             ({local_total:.1} vs {remote_total:.1} GiB/s)"
        );
    }

    #[test]
    fn broadcast_coherence_limits_aggregate_local_bandwidth() {
        // Table 1: the 8-socket Westmere machine only reaches ~96 GiB/s of
        // total local bandwidth although 8 x 19.3 = 154 GiB/s of controllers
        // exist, because snoop traffic saturates the interconnect.
        let topo = Topology::eight_socket_westmere_ex();
        let s = BandwidthSolver::new(&topo);
        let mut demands = Vec::new();
        let mut id = 0;
        for sock in 0..8u16 {
            for _ in 0..topo.contexts_per_socket() {
                demands.push(demand(id, sock, sock, topo.socket.per_context_stream_gibs));
                id += 1;
            }
        }
        let total = s.solve(&demands).total();
        assert!(
            total < 130.0,
            "broadcast snooping should keep total local bandwidth well below 154 GiB/s, got {total}"
        );
        assert!(total > 70.0, "but the machine should still stream substantially, got {total}");
    }

    #[test]
    fn directory_coherence_does_not_limit_aggregate_local_bandwidth() {
        let topo = Topology::four_socket_ivybridge_ex();
        let s = BandwidthSolver::new(&topo);
        let mut demands = Vec::new();
        let mut id = 0;
        for sock in 0..4u16 {
            for _ in 0..30 {
                demands.push(demand(id, sock, sock, 6.0));
                id += 1;
            }
        }
        let total = s.solve(&demands).total();
        assert!(total > 0.9 * 260.0, "directory machine should reach near 260 GiB/s, got {total}");
    }

    #[test]
    fn mixed_local_and_remote_streams_share_fairly() {
        let s = solver4();
        // Socket 0's MC serves 10 local streams and 10 remote streams from S1.
        let mut demands = Vec::new();
        for i in 0..10 {
            demands.push(demand(i, 0, 0, 6.0));
        }
        for i in 10..20 {
            demands.push(demand(i, 1, 0, 6.0));
        }
        let alloc = s.solve(&demands);
        let local: f64 = alloc.rates[..10].iter().sum();
        let remote: f64 = alloc.rates[10..].iter().sum();
        // Remote streams are bottlenecked by the QPI pair (8.8 GiB/s), local
        // ones get the rest of the controller.
        assert!(remote <= 8.8 + 1e-6);
        assert!(local > remote);
        assert!(local + remote <= 65.0 + 1e-6);
    }

    #[test]
    fn rates_never_exceed_caps_or_go_negative() {
        let s = solver4();
        let demands: Vec<_> =
            (0..100).map(|i| demand(i, (i % 4) as u16, ((i / 4) % 4) as u16, 3.0)).collect();
        let alloc = s.solve(&demands);
        for (d, r) in demands.iter().zip(&alloc.rates) {
            assert!(*r >= 0.0);
            assert!(*r <= d.cap_gibs + 1e-6);
        }
    }

    #[test]
    fn qpi_traffic_accounting_distinguishes_data_and_coherence() {
        let s = solver4();
        let local = demand(0, 0, 0, 6.0);
        let remote = demand(1, 1, 0, 6.0);
        let (d_local, t_local) = s.qpi_traffic_for(&local, 1000.0);
        let (d_remote, t_remote) = s.qpi_traffic_for(&remote, 1000.0);
        assert_eq!(d_local, 0.0);
        assert!(t_local > 0.0, "coherence traffic exists even for local accesses");
        assert_eq!(d_remote, 1000.0);
        assert!(t_remote > d_remote);
    }

    #[test]
    fn zero_cap_demands_get_zero_rate() {
        let s = solver4();
        let alloc = s.solve(&[demand(0, 0, 0, 0.0), demand(1, 0, 0, 6.0)]);
        assert_eq!(alloc.rates[0], 0.0);
        assert!(alloc.rates[1] > 0.0);
    }
}
