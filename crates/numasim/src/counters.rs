//! "Hardware" performance counters.
//!
//! The paper reports, for several experiments, metrics gathered from Linux and
//! the Intel Performance Counter Monitor tool: per-socket memory throughput,
//! local vs. remote last-level-cache (LLC) load misses, instructions per cycle
//! (IPC), CPU load, and the total and data-only traffic crossing the QPI
//! interconnect. The simulation engine accumulates the same quantities here so
//! the benchmark harness can print the companion metrics of every figure.

use serde::{Deserialize, Serialize};

use crate::topology::{SocketId, Topology};

/// Size of a cache line in bytes; every LLC miss transfers one line.
pub const CACHE_LINE_BYTES: f64 = 64.0;

/// Counters attributed to one socket.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SocketCounters {
    /// Bytes served by this socket's memory controllers (to any core).
    pub mc_bytes: f64,
    /// Bytes that cores *of this socket* loaded from local memory.
    pub local_access_bytes: f64,
    /// Bytes that cores *of this socket* loaded from remote memory.
    pub remote_access_bytes: f64,
    /// Scalar operations retired by cores of this socket.
    pub instructions: f64,
    /// Seconds of hardware-context busy time accumulated on this socket.
    pub busy_context_seconds: f64,
}

/// Counters attributed to the interconnect as a whole.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkCounters {
    /// Bytes of payload data moved between sockets.
    pub qpi_data_bytes: f64,
    /// Bytes of total traffic (data + cache coherence) moved between sockets.
    pub qpi_total_bytes: f64,
}

/// The full set of machine counters for one measurement interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HwCounters {
    /// Per-socket counters.
    pub sockets: Vec<SocketCounters>,
    /// Interconnect counters.
    pub links: LinkCounters,
    /// Virtual seconds covered by the measurement.
    pub elapsed_seconds: f64,
    /// Number of hardware contexts of the machine (for CPU-load computation).
    pub total_contexts: usize,
    /// Nominal core frequency in GHz (for the IPC proxy).
    pub frequency_ghz: f64,
}

impl HwCounters {
    /// Creates zeroed counters for a topology.
    pub fn new(topology: &Topology) -> Self {
        HwCounters {
            sockets: vec![SocketCounters::default(); topology.socket_count()],
            links: LinkCounters::default(),
            elapsed_seconds: 0.0,
            total_contexts: topology.total_contexts(),
            frequency_ghz: topology.socket.frequency_ghz,
        }
    }

    /// Resets every counter to zero (keeps the machine shape).
    pub fn reset(&mut self) {
        for s in &mut self.sockets {
            *s = SocketCounters::default();
        }
        self.links = LinkCounters::default();
        self.elapsed_seconds = 0.0;
    }

    /// Records `bytes` streamed by a core on `cpu` from memory on `mem`,
    /// together with the interconnect traffic `(data, total)` it generated.
    pub fn record_access(
        &mut self,
        cpu: SocketId,
        mem: SocketId,
        bytes: f64,
        qpi_data_bytes: f64,
        qpi_total_bytes: f64,
    ) {
        self.sockets[mem.index()].mc_bytes += bytes;
        if cpu == mem {
            self.sockets[cpu.index()].local_access_bytes += bytes;
        } else {
            self.sockets[cpu.index()].remote_access_bytes += bytes;
        }
        self.links.qpi_data_bytes += qpi_data_bytes;
        self.links.qpi_total_bytes += qpi_total_bytes;
    }

    /// Records `ops` scalar operations retired on `cpu`.
    pub fn record_instructions(&mut self, cpu: SocketId, ops: f64) {
        self.sockets[cpu.index()].instructions += ops;
    }

    /// Records `seconds` of busy time on a hardware context of `cpu`.
    pub fn record_busy(&mut self, cpu: SocketId, seconds: f64) {
        self.sockets[cpu.index()].busy_context_seconds += seconds;
    }

    /// Adds another counter snapshot into this one.
    pub fn merge(&mut self, other: &HwCounters) {
        for (a, b) in self.sockets.iter_mut().zip(&other.sockets) {
            a.mc_bytes += b.mc_bytes;
            a.local_access_bytes += b.local_access_bytes;
            a.remote_access_bytes += b.remote_access_bytes;
            a.instructions += b.instructions;
            a.busy_context_seconds += b.busy_context_seconds;
        }
        self.links.qpi_data_bytes += other.links.qpi_data_bytes;
        self.links.qpi_total_bytes += other.links.qpi_total_bytes;
        self.elapsed_seconds += other.elapsed_seconds;
    }

    /// Memory throughput of each socket in GiB/s over the measurement window.
    pub fn memory_throughput_gibs(&self) -> Vec<f64> {
        let gib = (1u64 << 30) as f64;
        self.sockets
            .iter()
            .map(|s| {
                if self.elapsed_seconds > 0.0 {
                    s.mc_bytes / gib / self.elapsed_seconds
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Aggregate memory throughput of the machine in GiB/s.
    pub fn total_memory_throughput_gibs(&self) -> f64 {
        self.memory_throughput_gibs().iter().sum()
    }

    /// Local and remote LLC load misses (counted as one miss per cache line).
    pub fn llc_misses(&self) -> (f64, f64) {
        let local: f64 =
            self.sockets.iter().map(|s| s.local_access_bytes).sum::<f64>() / CACHE_LINE_BYTES;
        let remote: f64 =
            self.sockets.iter().map(|s| s.remote_access_bytes).sum::<f64>() / CACHE_LINE_BYTES;
        (local, remote)
    }

    /// CPU load of the machine in percent: busy context time over available
    /// context time.
    pub fn cpu_load_percent(&self) -> f64 {
        if self.elapsed_seconds <= 0.0 || self.total_contexts == 0 {
            return 0.0;
        }
        let available = self.elapsed_seconds * self.total_contexts as f64;
        let busy: f64 = self.sockets.iter().map(|s| s.busy_context_seconds).sum();
        100.0 * (busy / available).min(1.0)
    }

    /// Instructions-per-cycle proxy: retired operations over busy cycles.
    pub fn ipc(&self) -> f64 {
        let busy: f64 = self.sockets.iter().map(|s| s.busy_context_seconds).sum();
        if busy <= 0.0 {
            return 0.0;
        }
        let cycles = busy * self.frequency_ghz * 1e9;
        let instructions: f64 = self.sockets.iter().map(|s| s.instructions).sum();
        instructions / cycles
    }

    /// Total QPI traffic in bytes (data plus coherence).
    pub fn qpi_total_bytes(&self) -> f64 {
        self.links.qpi_total_bytes
    }

    /// Data-only QPI traffic in bytes.
    pub fn qpi_data_bytes(&self) -> f64 {
        self.links.qpi_data_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters() -> HwCounters {
        HwCounters::new(&Topology::four_socket_ivybridge_ex())
    }

    #[test]
    fn record_access_attributes_to_the_serving_socket() {
        let mut c = counters();
        c.record_access(SocketId(1), SocketId(0), 1000.0, 1000.0, 1100.0);
        assert_eq!(c.sockets[0].mc_bytes, 1000.0);
        assert_eq!(c.sockets[1].remote_access_bytes, 1000.0);
        assert_eq!(c.sockets[1].local_access_bytes, 0.0);
        assert_eq!(c.links.qpi_data_bytes, 1000.0);
        assert_eq!(c.links.qpi_total_bytes, 1100.0);
    }

    #[test]
    fn local_access_counts_as_local_miss() {
        let mut c = counters();
        c.record_access(SocketId(2), SocketId(2), 6400.0, 0.0, 10.0);
        let (local, remote) = c.llc_misses();
        assert_eq!(local, 100.0);
        assert_eq!(remote, 0.0);
    }

    #[test]
    fn memory_throughput_divides_by_elapsed_time() {
        let mut c = counters();
        c.record_access(SocketId(0), SocketId(0), (1u64 << 30) as f64, 0.0, 0.0);
        c.elapsed_seconds = 2.0;
        let tp = c.memory_throughput_gibs();
        assert!((tp[0] - 0.5).abs() < 1e-12);
        assert!((c.total_memory_throughput_gibs() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cpu_load_is_busy_over_available() {
        let mut c = counters();
        c.elapsed_seconds = 1.0;
        // 60 of 120 contexts busy for the whole second.
        for _ in 0..60 {
            c.record_busy(SocketId(0), 1.0);
        }
        assert!((c.cpu_load_percent() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn ipc_uses_busy_cycles_only() {
        let mut c = counters();
        c.record_busy(SocketId(0), 1.0);
        c.record_instructions(SocketId(0), 2.5e9);
        c.elapsed_seconds = 10.0;
        assert!((c.ipc() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = counters();
        let mut b = counters();
        a.record_access(SocketId(0), SocketId(0), 100.0, 0.0, 0.0);
        b.record_access(SocketId(0), SocketId(0), 200.0, 0.0, 0.0);
        b.elapsed_seconds = 1.0;
        a.merge(&b);
        assert_eq!(a.sockets[0].mc_bytes, 300.0);
        assert_eq!(a.elapsed_seconds, 1.0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut c = counters();
        c.record_access(SocketId(0), SocketId(1), 100.0, 100.0, 120.0);
        c.record_busy(SocketId(0), 1.0);
        c.elapsed_seconds = 5.0;
        c.reset();
        assert_eq!(c.sockets[0].mc_bytes, 0.0);
        assert_eq!(c.qpi_total_bytes(), 0.0);
        assert_eq!(c.elapsed_seconds, 0.0);
    }
}
