//! # numascan-numasim
//!
//! A deterministic, software-only model of a NUMA (non-uniform memory access)
//! machine, used as the execution substrate for reproducing the experiments of
//! *"Scaling Up Concurrent Main-Memory Column-Store Scans: Towards Adaptive
//! NUMA-aware Data and Task Placement"* (Psaroudakis et al., VLDB 2015).
//!
//! The paper evaluates data-placement and task-scheduling strategies on three
//! physical servers (4-socket Ivybridge-EX, 8-socket Westmere-EX and a
//! 32-socket SGI UV 300). The effects it studies are *hardware contention*
//! effects: saturation of per-socket memory controllers, saturation of
//! inter-socket (QPI) links, higher latency of remote accesses and the cost of
//! the cache-coherence protocol. This crate models exactly those mechanisms:
//!
//! * [`topology`] — socket/core/interconnect descriptions, with presets
//!   parameterised by the latencies and bandwidths the paper reports in
//!   Table 1.
//! * [`memman`] — a page-granular virtual memory manager providing the same
//!   operations a NUMA-aware application uses on Linux (first-touch
//!   allocation, explicit placement, interleaving, `move_pages`).
//! * [`bandwidth`] — a generalized max-min fair bandwidth allocator that
//!   shares memory-controller and interconnect capacity between concurrent
//!   traffic streams, including cache-coherence amplification.
//! * [`latency`] — latency-bound (pointer-chasing / random access) cost model.
//! * [`counters`] — per-socket and per-link "hardware" counters equivalent to
//!   what the paper gathers with the Intel PCM tool.
//! * [`machine`] — a convenience bundle of the above plus a virtual clock.
//!
//! Higher layers (the task scheduler and the column-store engine) decide *what*
//! runs *where*; this crate answers *how long it takes* and *what the counters
//! show*.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bandwidth;
pub mod counters;
pub mod error;
pub mod latency;
pub mod machine;
pub mod memman;
pub mod topology;

pub use bandwidth::{BandwidthSolver, MemoryDemand, RateAllocation};
pub use counters::{HwCounters, LinkCounters, SocketCounters};
pub use error::{NumaSimError, Result};
pub use latency::LatencyModel;
pub use machine::{Machine, VirtualClock};
pub use memman::{AllocPolicy, MemoryManager, PageLocation, VirtRange, PAGE_SIZE};
pub use topology::{CoherenceProtocol, HwContext, SocketId, Topology, TopologyKind};
