//! NUMA topology descriptions.
//!
//! A [`Topology`] describes the hardware a workload runs on: how many sockets
//! there are, how many cores and hardware contexts each socket has, the local
//! memory bandwidth of each socket's memory controllers, the latency and
//! bandwidth of the interconnect between each pair of sockets, and the cache
//! coherence protocol.
//!
//! Three presets reproduce the machines of Table 1 of the paper:
//!
//! | preset | sockets | local lat | 1-hop lat | max-hop lat | local B/W | 1-hop B/W | max-hop B/W |
//! |--------|---------|-----------|-----------|-------------|-----------|-----------|-------------|
//! | [`Topology::four_socket_ivybridge_ex`]   | 4  | 150 ns | 240 ns | 240 ns | 65 GiB/s   | 8.8 GiB/s  | 8.8 GiB/s |
//! | [`Topology::thirty_two_socket_ivybridge_ex`] | 32 | 112 ns | 193 ns | 500 ns | 47.5 GiB/s | 11.8 GiB/s | 9.8 GiB/s |
//! | [`Topology::eight_socket_westmere_ex`]   | 8  | 163 ns | 195 ns | 245 ns | 19.3 GiB/s | 10.3 GiB/s | 4.6 GiB/s |

use serde::{Deserialize, Serialize};

/// Identifier of a NUMA socket (a processor package with its own memory
/// controllers and local DRAM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SocketId(pub u16);

impl SocketId {
    /// The socket index as a `usize`, for indexing per-socket vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for SocketId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S{}", self.0 + 1)
    }
}

/// A hardware context (a hyperthread slot) on which exactly one task can run
/// at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HwContext {
    /// Socket the context belongs to.
    pub socket: SocketId,
    /// Index of the context within its socket (0-based).
    pub local_index: u32,
    /// Global index of the context across the whole machine (0-based).
    pub global_index: u32,
}

/// Cache coherence protocol of the machine.
///
/// The paper observes (Section 6.1.2) that the broadcast-based snooping
/// protocol of the Westmere-EX machine generates coherence traffic on the
/// interconnect even for purely local accesses, which prevents the aggregate
/// local bandwidth from being the sum of per-socket bandwidths.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CoherenceProtocol {
    /// Directory-based coherence (Ivybridge-EX): coherence traffic is a small
    /// fraction of data traffic and stays mostly off the critical path.
    Directory {
        /// Interconnect load added per byte of data traffic (dimensionless).
        overhead_factor: f64,
    },
    /// Broadcast snooping (Westmere-EX): every memory access broadcasts snoop
    /// traffic over the interconnect of every socket, so local accesses on one
    /// socket consume interconnect capacity everywhere.
    BroadcastSnoop {
        /// Interconnect load added on *every* socket per byte of data traffic.
        snoop_factor: f64,
    },
}

impl CoherenceProtocol {
    /// `true` if the protocol broadcasts snoops to all sockets.
    pub fn is_broadcast(&self) -> bool {
        matches!(self, CoherenceProtocol::BroadcastSnoop { .. })
    }
}

/// A well-known machine shape. Used by the benchmark harness to label results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologyKind {
    /// The fully interconnected 4-socket Ivybridge-EX server of Figure 2.
    FourSocketIvybridgeEx,
    /// The 8-socket Westmere-EX server (2 × IBM x3950 X5).
    EightSocketWestmereEx,
    /// The 32-socket SGI UV 300 rack-scale server.
    ThirtyTwoSocketIvybridgeEx,
    /// A user-defined topology.
    Custom,
}

/// Description of the per-socket hardware resources.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SocketSpec {
    /// Physical cores per socket.
    pub cores: u32,
    /// Hardware threads per core (2 for hyperthreaded Xeons).
    pub threads_per_core: u32,
    /// Aggregate local DRAM bandwidth of the socket's memory controllers, GiB/s.
    pub local_bandwidth_gibs: f64,
    /// Modelled DRAM capacity of the socket in GiB.
    pub memory_gib: f64,
    /// Maximum streaming bandwidth a single hardware context can consume, GiB/s.
    ///
    /// A single core cannot saturate the socket's memory controllers by
    /// itself; several concurrent streams are needed. This caps a task's
    /// individual share.
    pub per_context_stream_gibs: f64,
    /// Scalar "operations" per second one hardware context retires when
    /// CPU-bound (used for compute-dominated work such as aggregation
    /// arithmetic or dictionary binary search).
    pub context_ops_per_sec: f64,
    /// Memory-level parallelism: number of outstanding cache misses a single
    /// context sustains for latency-bound (random access) work.
    pub memory_level_parallelism: f64,
    /// Nominal clock frequency in GHz (used only for the IPC counter proxy).
    pub frequency_ghz: f64,
}

impl SocketSpec {
    /// Hardware contexts per socket.
    pub fn contexts(&self) -> u32 {
        self.cores * self.threads_per_core
    }
}

/// Latency and per-pair interconnect bandwidth as a function of hop distance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HopProfile {
    /// Idle latency of a local access, nanoseconds.
    pub local_latency_ns: f64,
    /// Idle latency of a one-hop remote access, nanoseconds.
    pub one_hop_latency_ns: f64,
    /// Idle latency of a maximum-distance remote access, nanoseconds.
    pub max_hop_latency_ns: f64,
    /// Peak bandwidth between adjacent sockets, GiB/s.
    pub one_hop_bandwidth_gibs: f64,
    /// Peak bandwidth between maximally distant sockets, GiB/s.
    pub max_hop_bandwidth_gibs: f64,
}

/// A complete machine description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Human-readable name of the machine.
    pub name: String,
    /// Which preset (if any) this topology corresponds to.
    pub kind: TopologyKind,
    /// Per-socket hardware resources (homogeneous across sockets).
    pub socket: SocketSpec,
    /// Number of sockets.
    pub sockets: usize,
    /// Hop-distance matrix between sockets (0 on the diagonal).
    pub hops: Vec<Vec<u8>>,
    /// Latency/bandwidth profile by hop distance.
    pub profile: HopProfile,
    /// Total interconnect (QPI) capacity of one socket, GiB/s, shared by all
    /// remote traffic entering or leaving that socket plus coherence traffic.
    pub socket_interconnect_gibs: f64,
    /// Cache coherence protocol.
    pub coherence: CoherenceProtocol,
    /// Fixed scheduling/dispatch overhead per task, in microseconds of CPU
    /// time on the worker that picks the task up. This models the cost the
    /// paper attributes to "splitting an operation into all partitions".
    pub task_overhead_us: f64,
    /// Additional memory-controller load caused by serving a *remote* request
    /// instead of a local one (dimensionless, e.g. 0.5 = a remote byte costs
    /// 1.5 bytes of controller capacity). This models the paper's observation
    /// that "remote accesses to these sockets prevent some local accesses from
    /// queuing in the memory controllers fast" (Section 6.2.1).
    pub remote_mc_penalty: f64,
}

impl Topology {
    /// The 4-socket Intel Xeon E7-4880 v2 (Ivybridge-EX) server of Figure 2 /
    /// Table 1, fully interconnected with 3 QPI links per socket.
    pub fn four_socket_ivybridge_ex() -> Self {
        let sockets = 4;
        Topology {
            name: "4-socket Ivybridge-EX (Intel Xeon E7-4880 v2)".to_string(),
            kind: TopologyKind::FourSocketIvybridgeEx,
            socket: SocketSpec {
                cores: 15,
                threads_per_core: 2,
                local_bandwidth_gibs: 65.0,
                memory_gib: 256.0,
                per_context_stream_gibs: 6.0,
                context_ops_per_sec: 2.5e9,
                memory_level_parallelism: 2.0,
                frequency_ghz: 2.5,
            },
            sockets,
            hops: fully_connected_hops(sockets),
            profile: HopProfile {
                local_latency_ns: 150.0,
                one_hop_latency_ns: 240.0,
                max_hop_latency_ns: 240.0,
                one_hop_bandwidth_gibs: 8.8,
                max_hop_bandwidth_gibs: 8.8,
            },
            // 3 QPI links per socket; each link carries ~8.8 GiB/s of data
            // requests once coherence overhead is accounted for.
            socket_interconnect_gibs: 3.0 * 8.8,
            coherence: CoherenceProtocol::Directory { overhead_factor: 0.10 },
            task_overhead_us: 150.0,
            remote_mc_penalty: 0.5,
        }
    }

    /// The 8-socket Westmere-EX server (2 × IBM x3950 X5, Intel Xeon E7-8870)
    /// of Table 1, with a broadcast-based snooping coherence protocol.
    pub fn eight_socket_westmere_ex() -> Self {
        let sockets = 8;
        Topology {
            name: "8-socket Westmere-EX (Intel Xeon E7-8870, 2x IBM x3950 X5)".to_string(),
            kind: TopologyKind::EightSocketWestmereEx,
            socket: SocketSpec {
                cores: 10,
                threads_per_core: 2,
                local_bandwidth_gibs: 19.3,
                memory_gib: 128.0,
                per_context_stream_gibs: 4.0,
                context_ops_per_sec: 2.4e9,
                memory_level_parallelism: 2.0,
                frequency_ghz: 2.4,
            },
            sockets,
            // Two glued 4-socket boxes: sockets 0-3 and 4-7 are each fully
            // connected; crossing the box boundary costs an extra hop.
            hops: two_box_hops(sockets, 4),
            profile: HopProfile {
                local_latency_ns: 163.0,
                one_hop_latency_ns: 195.0,
                max_hop_latency_ns: 245.0,
                one_hop_bandwidth_gibs: 10.3,
                max_hop_bandwidth_gibs: 4.6,
            },
            socket_interconnect_gibs: 2.0 * 10.3,
            // Calibrated so that the aggregate local bandwidth of the machine
            // saturates around 96 GiB/s (Table 1) instead of 8 x 19.3 GiB/s:
            // with 160 streaming contexts, snoop traffic saturates the
            // per-socket interconnect at ~0.6 GiB/s per stream.
            coherence: CoherenceProtocol::BroadcastSnoop { snoop_factor: 0.215 },
            task_overhead_us: 150.0,
            remote_mc_penalty: 0.5,
        }
    }

    /// The 32-socket SGI UV 300 rack-scale server (Intel Xeon E7-8890 v2,
    /// Ivybridge-EX) of Table 1, with a multi-hop NUMAlink-style topology.
    pub fn thirty_two_socket_ivybridge_ex() -> Self {
        let sockets = 32;
        Topology {
            name: "32-socket Ivybridge-EX (SGI UV 300, Intel Xeon E7-8890 v2)".to_string(),
            kind: TopologyKind::ThirtyTwoSocketIvybridgeEx,
            socket: SocketSpec {
                cores: 15,
                threads_per_core: 2,
                local_bandwidth_gibs: 47.5,
                memory_gib: 768.0,
                per_context_stream_gibs: 5.0,
                context_ops_per_sec: 2.8e9,
                memory_level_parallelism: 2.0,
                frequency_ghz: 2.8,
            },
            sockets,
            // Groups of 4 sockets form fully connected blades; blades are
            // connected through a NUMAlink fabric that adds hops with
            // distance between blades (1 extra hop per 8-blade "quadrant").
            hops: blade_hops(sockets, 4),
            profile: HopProfile {
                local_latency_ns: 112.0,
                one_hop_latency_ns: 193.0,
                max_hop_latency_ns: 500.0,
                one_hop_bandwidth_gibs: 11.8,
                max_hop_bandwidth_gibs: 9.8,
            },
            socket_interconnect_gibs: 3.0 * 11.8,
            coherence: CoherenceProtocol::Directory { overhead_factor: 0.10 },
            task_overhead_us: 150.0,
            remote_mc_penalty: 0.5,
        }
    }

    /// Splits the 32-socket machine in half, as the paper does for the BW-EML
    /// experiment (16 sockets host the database server).
    pub fn sixteen_socket_ivybridge_ex() -> Self {
        let mut t = Self::thirty_two_socket_ivybridge_ex();
        t.sockets = 16;
        t.hops = blade_hops(16, 4);
        t.name = "16-socket Ivybridge-EX (half SGI UV 300)".to_string();
        t.kind = TopologyKind::Custom;
        t
    }

    /// A custom topology with `sockets` identical sockets, fully
    /// interconnected, useful for tests.
    pub fn custom_uniform(sockets: usize, socket: SocketSpec, profile: HopProfile) -> Self {
        let interconnect = profile.one_hop_bandwidth_gibs * 3.0;
        Topology {
            name: format!("custom {sockets}-socket machine"),
            kind: TopologyKind::Custom,
            socket,
            sockets,
            hops: fully_connected_hops(sockets),
            profile,
            socket_interconnect_gibs: interconnect,
            coherence: CoherenceProtocol::Directory { overhead_factor: 0.10 },
            task_overhead_us: 150.0,
            remote_mc_penalty: 0.5,
        }
    }

    /// Number of sockets.
    pub fn socket_count(&self) -> usize {
        self.sockets
    }

    /// All socket ids of the machine.
    pub fn socket_ids(&self) -> impl Iterator<Item = SocketId> + '_ {
        (0..self.sockets as u16).map(SocketId)
    }

    /// Total number of hardware contexts in the machine.
    pub fn total_contexts(&self) -> usize {
        self.sockets * self.socket.contexts() as usize
    }

    /// Hardware contexts of one socket.
    pub fn contexts_per_socket(&self) -> usize {
        self.socket.contexts() as usize
    }

    /// Enumerates every hardware context of the machine.
    pub fn hw_contexts(&self) -> Vec<HwContext> {
        let per_socket = self.socket.contexts();
        let mut out = Vec::with_capacity(self.total_contexts());
        let mut global = 0;
        for s in 0..self.sockets as u16 {
            for local in 0..per_socket {
                out.push(HwContext {
                    socket: SocketId(s),
                    local_index: local,
                    global_index: global,
                });
                global += 1;
            }
        }
        out
    }

    /// Checks that a socket id is valid for this topology.
    pub fn validate_socket(&self, socket: SocketId) -> crate::Result<()> {
        if socket.index() >= self.sockets {
            Err(crate::NumaSimError::InvalidSocket {
                socket: socket.index(),
                sockets: self.sockets,
            })
        } else {
            Ok(())
        }
    }

    /// Hop distance between two sockets (0 when they are the same socket).
    pub fn hop_distance(&self, from: SocketId, to: SocketId) -> u8 {
        self.hops[from.index()][to.index()]
    }

    /// Maximum hop distance in the machine.
    pub fn max_hops(&self) -> u8 {
        self.hops.iter().flat_map(|row| row.iter().copied()).max().unwrap_or(0)
    }

    /// Idle access latency in nanoseconds from a core on `from` to memory on
    /// `to`, interpolated by hop distance as in Table 1.
    pub fn access_latency_ns(&self, from: SocketId, to: SocketId) -> f64 {
        let hops = self.hop_distance(from, to);
        self.latency_for_hops(hops)
    }

    /// Idle access latency in nanoseconds for a given hop distance.
    pub fn latency_for_hops(&self, hops: u8) -> f64 {
        let max = self.max_hops().max(1);
        match hops {
            0 => self.profile.local_latency_ns,
            1 => self.profile.one_hop_latency_ns,
            h => {
                // Linear interpolation between the 1-hop and max-hop latency.
                let frac = (h as f64 - 1.0) / (max as f64 - 1.0).max(1.0);
                self.profile.one_hop_latency_ns
                    + frac * (self.profile.max_hop_latency_ns - self.profile.one_hop_latency_ns)
            }
        }
    }

    /// Peak point-to-point bandwidth in GiB/s between two distinct sockets.
    pub fn pair_bandwidth_gibs(&self, from: SocketId, to: SocketId) -> f64 {
        let hops = self.hop_distance(from, to);
        self.pair_bandwidth_for_hops(hops)
    }

    /// Peak point-to-point bandwidth in GiB/s for a given hop distance.
    pub fn pair_bandwidth_for_hops(&self, hops: u8) -> f64 {
        let max = self.max_hops().max(1);
        match hops {
            0 => self.socket.local_bandwidth_gibs,
            1 => self.profile.one_hop_bandwidth_gibs,
            h => {
                let frac = (h as f64 - 1.0) / (max as f64 - 1.0).max(1.0);
                self.profile.one_hop_bandwidth_gibs
                    + frac
                        * (self.profile.max_hop_bandwidth_gibs
                            - self.profile.one_hop_bandwidth_gibs)
            }
        }
    }

    /// Aggregate local memory bandwidth of the whole machine, GiB/s
    /// (the "Total local B/W" row of Table 1, before coherence effects).
    pub fn total_local_bandwidth_gibs(&self) -> f64 {
        self.socket.local_bandwidth_gibs * self.sockets as f64
    }

    /// Total modelled DRAM capacity in pages of 4 KiB.
    pub fn pages_per_socket(&self) -> u64 {
        (self.socket.memory_gib * (1u64 << 30) as f64 / crate::memman::PAGE_SIZE as f64) as u64
    }

    /// Summary row as reported in Table 1 of the paper:
    /// `(local latency, 1-hop latency, max-hop latency, local B/W, 1-hop B/W,
    /// max-hop B/W, total local B/W)`.
    pub fn table1_row(&self) -> (f64, f64, f64, f64, f64, f64, f64) {
        (
            self.profile.local_latency_ns,
            self.profile.one_hop_latency_ns,
            self.profile.max_hop_latency_ns,
            self.socket.local_bandwidth_gibs,
            self.profile.one_hop_bandwidth_gibs,
            self.profile.max_hop_bandwidth_gibs,
            self.total_local_bandwidth_gibs(),
        )
    }
}

/// Hop matrix for a fully interconnected machine: 1 hop between any two
/// distinct sockets.
fn fully_connected_hops(sockets: usize) -> Vec<Vec<u8>> {
    (0..sockets).map(|i| (0..sockets).map(|j| u8::from(i != j)).collect()).collect()
}

/// Hop matrix for two glued boxes of `box_size` sockets each: 1 hop within a
/// box, 2 hops across boxes.
fn two_box_hops(sockets: usize, box_size: usize) -> Vec<Vec<u8>> {
    (0..sockets)
        .map(|i| {
            (0..sockets)
                .map(|j| {
                    if i == j {
                        0
                    } else if i / box_size == j / box_size {
                        1
                    } else {
                        2
                    }
                })
                .collect()
        })
        .collect()
}

/// Hop matrix for a blade-based rack-scale machine: sockets within a blade of
/// `blade_size` are 1 hop apart; blades within the same group of 8 sockets are
/// 2 hops apart; further blades add one hop per doubling of the distance.
fn blade_hops(sockets: usize, blade_size: usize) -> Vec<Vec<u8>> {
    (0..sockets)
        .map(|i| {
            (0..sockets)
                .map(|j| {
                    if i == j {
                        return 0;
                    }
                    let bi = i / blade_size;
                    let bj = j / blade_size;
                    if bi == bj {
                        1
                    } else {
                        // Distance in the fabric grows with the blade index
                        // difference: neighbouring blades 2 hops, then 3, 4 ...
                        let d = bi.abs_diff(bj);
                        (2 + d.ilog2()) as u8
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_socket_matches_table1() {
        let t = Topology::four_socket_ivybridge_ex();
        let (l0, l1, lmax, b0, b1, bmax, total) = t.table1_row();
        assert_eq!(l0, 150.0);
        assert_eq!(l1, 240.0);
        assert_eq!(lmax, 240.0);
        assert_eq!(b0, 65.0);
        assert_eq!(b1, 8.8);
        assert_eq!(bmax, 8.8);
        assert_eq!(total, 260.0);
        assert_eq!(t.socket_count(), 4);
        assert_eq!(t.total_contexts(), 4 * 30);
        assert_eq!(t.max_hops(), 1);
    }

    #[test]
    fn eight_socket_matches_table1() {
        let t = Topology::eight_socket_westmere_ex();
        let (l0, l1, lmax, b0, b1, bmax, total) = t.table1_row();
        assert_eq!(l0, 163.0);
        assert_eq!(l1, 195.0);
        assert_eq!(lmax, 245.0);
        assert_eq!(b0, 19.3);
        assert_eq!(b1, 10.3);
        assert_eq!(bmax, 4.6);
        assert!((total - 154.4).abs() < 1e-9);
        assert!(t.coherence.is_broadcast());
        assert_eq!(t.max_hops(), 2);
    }

    #[test]
    fn thirty_two_socket_matches_table1() {
        let t = Topology::thirty_two_socket_ivybridge_ex();
        let (l0, l1, lmax, b0, b1, bmax, total) = t.table1_row();
        assert_eq!(l0, 112.0);
        assert_eq!(l1, 193.0);
        assert_eq!(lmax, 500.0);
        assert_eq!(b0, 47.5);
        assert_eq!(b1, 11.8);
        assert_eq!(bmax, 9.8);
        assert_eq!(total, 1520.0);
        assert_eq!(t.socket_count(), 32);
        assert!(t.max_hops() >= 3, "rack-scale machine must have multiple hops");
    }

    #[test]
    fn hop_matrix_is_symmetric_with_zero_diagonal() {
        for t in [
            Topology::four_socket_ivybridge_ex(),
            Topology::eight_socket_westmere_ex(),
            Topology::thirty_two_socket_ivybridge_ex(),
        ] {
            for i in 0..t.sockets {
                assert_eq!(t.hops[i][i], 0);
                for j in 0..t.sockets {
                    assert_eq!(t.hops[i][j], t.hops[j][i], "{} {} {}", t.name, i, j);
                }
            }
        }
    }

    #[test]
    fn latency_monotonically_increases_with_hops() {
        let t = Topology::thirty_two_socket_ivybridge_ex();
        let mut prev = 0.0;
        for h in 0..=t.max_hops() {
            let lat = t.latency_for_hops(h);
            assert!(lat >= prev, "latency must not decrease with hops");
            prev = lat;
        }
        assert_eq!(t.latency_for_hops(0), 112.0);
        assert_eq!(t.latency_for_hops(t.max_hops()), 500.0);
    }

    #[test]
    fn remote_bandwidth_is_an_order_of_magnitude_below_local() {
        // Section 2: "The inter-socket bandwidth decreases by an order of
        // magnitude with multiple hops."
        let t = Topology::four_socket_ivybridge_ex();
        let local = t.pair_bandwidth_for_hops(0);
        let remote = t.pair_bandwidth_for_hops(1);
        assert!(local / remote > 5.0);
    }

    #[test]
    fn remote_access_latency_is_at_least_30_percent_slower() {
        // Section 2: max hop latency is >30% slower than local on the 4- and
        // 8-socket machines, and around 5x slower on the 32-socket one.
        let t4 = Topology::four_socket_ivybridge_ex();
        assert!(t4.latency_for_hops(t4.max_hops()) / t4.latency_for_hops(0) > 1.3);
        let t8 = Topology::eight_socket_westmere_ex();
        assert!(t8.latency_for_hops(t8.max_hops()) / t8.latency_for_hops(0) > 1.3);
        let t32 = Topology::thirty_two_socket_ivybridge_ex();
        assert!(t32.latency_for_hops(t32.max_hops()) / t32.latency_for_hops(0) > 4.0);
    }

    #[test]
    fn hw_contexts_enumeration_is_dense_and_ordered() {
        let t = Topology::four_socket_ivybridge_ex();
        let ctxs = t.hw_contexts();
        assert_eq!(ctxs.len(), t.total_contexts());
        for (i, c) in ctxs.iter().enumerate() {
            assert_eq!(c.global_index as usize, i);
            assert_eq!(c.socket.index(), i / t.contexts_per_socket());
        }
    }

    #[test]
    fn validate_socket_rejects_out_of_range() {
        let t = Topology::four_socket_ivybridge_ex();
        assert!(t.validate_socket(SocketId(3)).is_ok());
        assert!(t.validate_socket(SocketId(4)).is_err());
    }

    #[test]
    fn sixteen_socket_half_machine() {
        let t = Topology::sixteen_socket_ivybridge_ex();
        assert_eq!(t.socket_count(), 16);
        assert_eq!(t.hops.len(), 16);
    }

    #[test]
    fn blade_hops_grow_with_distance() {
        let hops = blade_hops(32, 4);
        assert_eq!(hops[0][1], 1); // same blade
        assert_eq!(hops[0][4], 2); // neighbouring blade
        assert!(hops[0][31] > hops[0][4]); // far blade
    }
}
