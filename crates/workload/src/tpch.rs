//! A TPC-H Q1-style workload (Section 6.3).
//!
//! The paper measures the throughput of continuously issued TPC-H Q1
//! instances at scale factor 100 with 32 concurrent clients. Q1's evaluation
//! is dominated by aggregations over a single table (`lineitem`), and the
//! paper's measurements show it is *CPU-intensive*: the multiplications of its
//! aggregate expressions dominate. Consequently Target (stealing allowed)
//! beats Bound for this workload.

use numascan_core::{ColumnRef, ColumnSpec, QueryGenerator, QuerySpec, TableSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Rows of `lineitem` per TPC-H scale factor unit.
pub const LINEITEM_ROWS_PER_SF: u64 = 6_000_000;
/// CPU operations per row of the Q1 aggregation (expression-heavy: several
/// multiplications, additions and predicate checks per row).
pub const Q1_OPS_PER_ROW: f64 = 30.0;

/// The columns Q1 reads from `lineitem`.
const Q1_COLUMNS: &[(&str, u8)] = &[
    ("l_quantity", 6),
    ("l_extendedprice", 21),
    ("l_discount", 4),
    ("l_tax", 4),
    ("l_returnflag", 2),
    ("l_linestatus", 2),
    ("l_shipdate", 12),
];

/// Metadata description of the `lineitem` columns Q1 touches, at the given
/// scale factor.
pub fn lineitem_table_spec(scale_factor: u64) -> TableSpec {
    let rows = LINEITEM_ROWS_PER_SF * scale_factor.max(1);
    let columns = Q1_COLUMNS
        .iter()
        .map(|(name, bitcase)| ColumnSpec::integer_with_bitcase(*name, rows, *bitcase, false))
        .collect();
    TableSpec::new("lineitem", rows, columns)
}

/// Continuously issued TPC-H Q1 instances with random parameters.
#[derive(Debug, Clone)]
pub struct TpchQ1Workload {
    table: usize,
    columns: usize,
    rng: StdRng,
}

impl TpchQ1Workload {
    /// Creates the workload against table index `table` of the catalog, which
    /// must have been placed from [`lineitem_table_spec`].
    pub fn new(table: usize, seed: u64) -> Self {
        TpchQ1Workload { table, columns: Q1_COLUMNS.len(), rng: StdRng::seed_from_u64(seed) }
    }
}

impl QueryGenerator for TpchQ1Workload {
    fn next_query(&mut self, _client: usize) -> QuerySpec {
        // Each Q1 instance aggregates the lineitem columns; the simulation
        // represents it as an expression-heavy aggregation over one of the
        // touched columns (the per-row cost already accounts for the whole
        // expression list).
        let column = self.rng.gen_range(0..self.columns);
        QuerySpec::aggregate(ColumnRef { table: self.table, column }, Q1_OPS_PER_ROW)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numascan_core::QueryKind;

    #[test]
    fn lineitem_scales_with_the_scale_factor() {
        let sf100 = lineitem_table_spec(100);
        assert_eq!(sf100.rows, 600_000_000);
        assert_eq!(sf100.columns.len(), 7);
        let sf1 = lineitem_table_spec(1);
        assert_eq!(sf1.rows, 6_000_000);
    }

    #[test]
    fn q1_queries_are_cpu_intensive_aggregations() {
        let mut w = TpchQ1Workload::new(0, 3);
        for client in 0..100 {
            let q = w.next_query(client);
            assert_eq!(q.column.table, 0);
            assert!(q.column.column < 7);
            match q.kind {
                QueryKind::Aggregate { ops_per_row } => assert_eq!(ops_per_row, Q1_OPS_PER_ROW),
                other => panic!("unexpected kind {other:?}"),
            }
        }
    }
}
