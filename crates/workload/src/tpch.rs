//! A TPC-H Q1-style workload (Section 6.3).
//!
//! The paper measures the throughput of continuously issued TPC-H Q1
//! instances at scale factor 100 with 32 concurrent clients. Q1's evaluation
//! is dominated by aggregations over a single table (`lineitem`), and the
//! paper's measurements show it is *CPU-intensive*: the multiplications of its
//! aggregate expressions dominate. Consequently Target (stealing allowed)
//! beats Bound for this workload.

use numascan_core::{
    AggFunc, AggSpec, ColumnRef, ColumnSpec, QueryGenerator, QuerySpec, ScanRequest, TableSpec,
};
use numascan_storage::{Table, TableBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Rows of `lineitem` per TPC-H scale factor unit.
pub const LINEITEM_ROWS_PER_SF: u64 = 6_000_000;
/// CPU operations per row of the Q1 aggregation (expression-heavy: several
/// multiplications, additions and predicate checks per row).
pub const Q1_OPS_PER_ROW: f64 = 30.0;
/// CPU operations per row of the Q6 aggregation (one predicate check plus a
/// revenue multiply-accumulate — the scan stream dominates, so Q6 is
/// memory-intensive where Q1 is CPU-intensive).
pub const Q6_OPS_PER_ROW: f64 = 2.0;
/// Days in the synthetic `l_shipdate` domain (the TPC-H shipdate span of
/// roughly seven years, encodable in bitcase 12).
pub const SHIPDATE_DAYS: i64 = 2_556;

/// The columns Q1 reads from `lineitem`.
const Q1_COLUMNS: &[(&str, u8)] = &[
    ("l_quantity", 6),
    ("l_extendedprice", 21),
    ("l_discount", 4),
    ("l_tax", 4),
    ("l_returnflag", 2),
    ("l_linestatus", 2),
    ("l_shipdate", 12),
];

/// Metadata description of the `lineitem` columns Q1 touches, at the given
/// scale factor.
pub fn lineitem_table_spec(scale_factor: u64) -> TableSpec {
    let rows = LINEITEM_ROWS_PER_SF * scale_factor.max(1);
    let columns = Q1_COLUMNS
        .iter()
        .map(|(name, bitcase)| ColumnSpec::integer_with_bitcase(*name, rows, *bitcase, false))
        .collect();
    TableSpec::new("lineitem", rows, columns)
}

/// Builds a real, materialised `lineitem`-derived table at laptop scale for
/// native execution of the fused aggregation pipelines: the Q1/Q6 columns
/// with TPC-H-like value domains (seeded uniform draws — quantities 1–50,
/// price cents, per-mille discounts/taxes, a three-value return flag, a
/// two-value line status, and ship dates over [`SHIPDATE_DAYS`] days).
pub fn lineitem_table(rows: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut quantity = Vec::with_capacity(rows);
    let mut extendedprice = Vec::with_capacity(rows);
    let mut discount = Vec::with_capacity(rows);
    let mut tax = Vec::with_capacity(rows);
    let mut returnflag = Vec::with_capacity(rows);
    let mut linestatus = Vec::with_capacity(rows);
    let mut shipdate = Vec::with_capacity(rows);
    for _ in 0..rows {
        quantity.push(rng.gen_range(1..=50i64));
        extendedprice.push(rng.gen_range(900..=104_950i64));
        discount.push(rng.gen_range(0..=10i64));
        tax.push(rng.gen_range(0..=8i64));
        returnflag.push(rng.gen_range(0..=2i64));
        linestatus.push(rng.gen_range(0..=1i64));
        shipdate.push(rng.gen_range(0..SHIPDATE_DAYS));
    }
    TableBuilder::new("lineitem")
        .add_values("l_quantity", &quantity, false)
        .add_values("l_extendedprice", &extendedprice, false)
        .add_values("l_discount", &discount, false)
        .add_values("l_tax", &tax, false)
        .add_values("l_returnflag", &returnflag, false)
        .add_values("l_linestatus", &linestatus, false)
        .add_values("l_shipdate", &shipdate, false)
        .build()
}

/// The TPC-H-derived Q1 statement for the fused aggregation pipeline:
/// `l_shipdate <= [last date] - 90 days`, grouped by the three-value
/// `l_returnflag` dictionary, computing count/sum/min/max/avg over
/// `l_quantity`. (The full Q1 aggregates several derived expressions over
/// two group columns; this engine's derived form keeps its shape — a
/// near-full scan feeding a low-cardinality grouped aggregation.)
pub fn q1_request() -> ScanRequest {
    ScanRequest::between("l_shipdate", 0, SHIPDATE_DAYS - 90).with_aggregate(
        AggSpec::new(
            "l_quantity",
            vec![AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max, AggFunc::Avg],
        )
        .with_group_by("l_returnflag"),
    )
}

/// The TPC-H-derived Q6 statement: one year of ship dates selecting roughly
/// a seventh of the table, summing `l_extendedprice` into a single global
/// row — the canonical scan-dominated aggregation.
pub fn q6_request() -> ScanRequest {
    ScanRequest::between("l_shipdate", 365, 729)
        .with_aggregate(AggSpec::new("l_extendedprice", vec![AggFunc::Sum]))
}

/// Continuously issued TPC-H Q1 instances with random parameters.
#[derive(Debug, Clone)]
pub struct TpchQ1Workload {
    table: usize,
    columns: usize,
    rng: StdRng,
}

impl TpchQ1Workload {
    /// Creates the workload against table index `table` of the catalog, which
    /// must have been placed from [`lineitem_table_spec`].
    pub fn new(table: usize, seed: u64) -> Self {
        TpchQ1Workload { table, columns: Q1_COLUMNS.len(), rng: StdRng::seed_from_u64(seed) }
    }
}

impl QueryGenerator for TpchQ1Workload {
    fn next_query(&mut self, _client: usize) -> QuerySpec {
        // Each Q1 instance aggregates the lineitem columns; the simulation
        // represents it as an expression-heavy aggregation over one of the
        // touched columns (the per-row cost already accounts for the whole
        // expression list).
        let column = self.rng.gen_range(0..self.columns);
        QuerySpec::aggregate(ColumnRef { table: self.table, column }, Q1_OPS_PER_ROW)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numascan_core::QueryKind;

    #[test]
    fn lineitem_scales_with_the_scale_factor() {
        let sf100 = lineitem_table_spec(100);
        assert_eq!(sf100.rows, 600_000_000);
        assert_eq!(sf100.columns.len(), 7);
        let sf1 = lineitem_table_spec(1);
        assert_eq!(sf1.rows, 6_000_000);
    }

    #[test]
    fn q1_queries_are_cpu_intensive_aggregations() {
        let mut w = TpchQ1Workload::new(0, 3);
        for client in 0..100 {
            let q = w.next_query(client);
            assert_eq!(q.column.table, 0);
            assert!(q.column.column < 7);
            match q.kind {
                QueryKind::Aggregate { ops_per_row } => assert_eq!(ops_per_row, Q1_OPS_PER_ROW),
                other => panic!("unexpected kind {other:?}"),
            }
        }
    }

    #[test]
    fn lineitem_table_is_deterministic_with_tpch_domains() {
        let a = lineitem_table(5_000, 7);
        let b = lineitem_table(5_000, 7);
        assert_eq!(a.row_count(), 5_000);
        for name in ["l_quantity", "l_extendedprice", "l_returnflag", "l_shipdate"] {
            let (_, ca) = a.column_by_name(name).unwrap();
            let (_, cb) = b.column_by_name(name).unwrap();
            assert_eq!(ca.value_at(123), cb.value_at(123), "same seed, same {name}");
        }
        let (_, flag) = a.column_by_name("l_returnflag").unwrap();
        assert!(flag.dictionary().len() <= 3, "l_returnflag is a three-value dictionary");
        let (_, ship) = a.column_by_name("l_shipdate").unwrap();
        for row in 0..200 {
            assert!((0..SHIPDATE_DAYS).contains(ship.value_at(row)));
        }
    }

    #[test]
    fn q1_and_q6_requests_have_their_tpch_shape() {
        let q1 = q1_request();
        let agg = q1.agg.as_ref().expect("Q1 is an aggregation");
        assert_eq!(agg.value_column, "l_quantity");
        assert_eq!(agg.group_by.as_deref(), Some("l_returnflag"));
        assert_eq!(agg.funcs.len(), 5);
        let q6 = q6_request();
        let agg = q6.agg.as_ref().expect("Q6 is an aggregation");
        assert_eq!(agg.value_column, "l_extendedprice");
        assert!(agg.group_by.is_none(), "Q6 answers one global row");
        assert_eq!(agg.funcs, vec![numascan_core::AggFunc::Sum]);
    }

    #[test]
    fn q1_out_costs_q6_under_the_calibrated_model() {
        // Regression (cost model satellite): with `ops_per_row` wired into
        // the CPU term, the real workload constants must order Q1-class
        // statements strictly above Q6-class ones over the very same
        // l_shipdate column — previously both collapsed to the identical
        // bandwidth-only price.
        use numascan_core::cost::CostModel;
        let model = CostModel::default();
        let rows = (LINEITEM_ROWS_PER_SF) as f64;
        let shipdate_bitcase = Q1_COLUMNS
            .iter()
            .find(|(name, _)| *name == "l_shipdate")
            .map(|(_, b)| *b)
            .expect("Q1 reads l_shipdate");
        let q1 = model.statement_cost(
            &QueryKind::Aggregate { ops_per_row: Q1_OPS_PER_ROW },
            rows,
            shipdate_bitcase,
        );
        let q6 = model.statement_cost(
            &QueryKind::Aggregate { ops_per_row: Q6_OPS_PER_ROW },
            rows,
            shipdate_bitcase,
        );
        assert!(q1 > q6, "Q1 ({Q1_OPS_PER_ROW} ops/row) must out-cost Q6: {q1} vs {q6}");
        // And the classifier must keep calling Q1 CPU-intensive and Q6
        // memory-intensive — the paper's Section 6.3 workload split.
        use numascan_scheduler::WorkClass;
        assert_eq!(model.aggregate_work_class(Q1_OPS_PER_ROW), WorkClass::CpuIntensive);
        assert_eq!(model.aggregate_work_class(Q6_OPS_PER_ROW), WorkClass::MemoryIntensive);
    }
}
