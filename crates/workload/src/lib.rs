//! # numascan-workload
//!
//! Dataset and workload generators reproducing the experimental setup of the
//! paper's evaluation (Section 6):
//!
//! * [`dataset`] — the synthetic table used by the sensitivity analysis
//!   (100 million rows, an ID column and 160 random integer columns whose
//!   bitcases cycle through 17–26), both as a metadata-only [`TableSpec`] for
//!   the simulator and as a real, materialised table for native execution.
//! * [`selection`] — uniform and skewed column selection (the skewed workload
//!   picks one of the first 80 columns with 20 % probability and one of the
//!   remaining 80 columns with 80 % probability).
//! * [`scans`] — the closed-loop scan workload: every client repeatedly
//!   executes `SELECT COLx FROM TBL WHERE COLx BETWEEN ? AND ?` with a
//!   configurable selectivity.
//! * [`tpch`] — a TPC-H Q1-style workload: expression-heavy aggregation over
//!   a single large table (CPU-intensive).
//! * [`bweml`] — a SAP BW-EML-style reporting workload: simple aggregations
//!   over three InfoCubes (memory-intensive). The real benchmark kit is
//!   proprietary; this models its published shape.
//! * [`shift`] — BW-EML-style *workload shifts* replayed against the native
//!   engine's session layer: seeded phases of hot-column traffic from
//!   concurrent clients, with the adaptive placer's closed loop optionally
//!   running between epochs.
//! * [`faults`] — seeded fault schedules (crashes, drops, delays,
//!   stragglers) consumed by the cluster tier's simulated transport, so
//!   every fault interleaving is replayable from a `(kind, seed)` pair.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bweml;
pub mod dataset;
pub mod faults;
pub mod scans;
pub mod selection;
pub mod shift;
pub mod tpch;

pub use bweml::BwEmlWorkload;
pub use dataset::{paper_table_spec, small_real_table, PAPER_COLUMNS, PAPER_ROWS};
pub use faults::{CrashWindow, FaultKind, FaultSchedule};
pub use scans::ScanWorkload;
pub use selection::ColumnSelection;
pub use shift::{replay_shift, EpochStats, ShiftConfig, ShiftPhase, ShiftReport};
pub use tpch::{
    lineitem_table, q1_request, q6_request, TpchQ1Workload, Q1_OPS_PER_ROW, Q6_OPS_PER_ROW,
};

use numascan_core::{Catalog, PlacedTable, PlacementStrategy, TableSpec};
use numascan_numasim::{Machine, Result};

/// Places `spec` on `machine` with `strategy` and returns a catalog containing
/// it (the common setup step of every experiment).
pub fn build_catalog(
    machine: &mut Machine,
    spec: &TableSpec,
    strategy: PlacementStrategy,
) -> Result<Catalog> {
    let table = PlacedTable::place(machine, spec, strategy)?;
    let mut catalog = Catalog::new();
    catalog.add_table(table);
    Ok(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use numascan_numasim::Topology;

    #[test]
    fn build_catalog_places_the_paper_dataset() {
        let mut machine = Machine::new(Topology::four_socket_ivybridge_ex());
        let spec = paper_table_spec(1_000_000, 16, false);
        let catalog = build_catalog(&mut machine, &spec, PlacementStrategy::RoundRobin).unwrap();
        assert_eq!(catalog.table_count(), 1);
        assert_eq!(catalog.table(0).columns.len(), 17); // ID + 16 payload columns
    }
}
