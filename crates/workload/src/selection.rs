//! Column selection distributions.
//!
//! Section 6.2: "Clients have a 20 % probability of choosing a random column
//! from the first 80 columns of the dataset, and a 80 % probability of
//! choosing one from the remaining 80 columns." In the paper's setup the hot
//! set of columns ends up concentrated on a subset of the sockets (Figure 15
//! shows only two of the four sockets serving traffic). To reproduce that
//! socket-level hotspot under a round-robin per-column placement, the skewed
//! distribution here uses the columns with *even* payload index as the hot
//! set: under RR they map to half of the sockets.

use rand::Rng;

/// How clients pick the column of their next query.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnSelection {
    /// Every payload column is equally likely.
    Uniform,
    /// Half of the columns (those with an even payload index — which RR
    /// placement maps to half of the sockets) form the hot set and are chosen
    /// with `hot_probability`; the other half with the remainder.
    Skewed {
        /// Probability of picking a column from the hot half (0.8 in the
        /// paper).
        hot_probability: f64,
    },
    /// Always the same column (used for single-table hotspots).
    Single(usize),
}

impl ColumnSelection {
    /// The paper's skewed workload (80 % of queries hit half of the columns).
    pub fn paper_skew() -> Self {
        ColumnSelection::Skewed { hot_probability: 0.8 }
    }

    /// `true` if the payload column index belongs to the hot set of the
    /// skewed distribution.
    pub fn is_hot_column(payload_index: usize) -> bool {
        payload_index.is_multiple_of(2)
    }

    /// Draws a payload column index in `0..columns`.
    pub fn pick<R: Rng>(&self, rng: &mut R, columns: usize) -> usize {
        assert!(columns > 0, "cannot pick from zero columns");
        match self {
            ColumnSelection::Uniform => rng.gen_range(0..columns),
            ColumnSelection::Skewed { hot_probability } => {
                let hot_count = columns.div_ceil(2); // even indices
                let cold_count = columns - hot_count;
                if cold_count == 0 || rng.gen_bool(hot_probability.clamp(0.0, 1.0)) {
                    2 * rng.gen_range(0..hot_count)
                } else {
                    2 * rng.gen_range(0..cold_count) + 1
                }
            }
            ColumnSelection::Single(column) => (*column).min(columns - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_selection_covers_all_columns_evenly() {
        let mut rng = StdRng::seed_from_u64(1);
        let sel = ColumnSelection::Uniform;
        let mut counts = vec![0usize; 10];
        for _ in 0..10_000 {
            counts[sel.pick(&mut rng, 10)] += 1;
        }
        assert!(counts.iter().all(|c| *c > 700 && *c < 1300), "{counts:?}");
    }

    #[test]
    fn skewed_selection_prefers_the_hot_half() {
        let mut rng = StdRng::seed_from_u64(2);
        let sel = ColumnSelection::paper_skew();
        let columns = 160;
        let mut hot = 0usize;
        let n = 20_000;
        for _ in 0..n {
            let picked = sel.pick(&mut rng, columns);
            assert!(picked < columns);
            if ColumnSelection::is_hot_column(picked) {
                hot += 1;
            }
        }
        let fraction = hot as f64 / n as f64;
        assert!((fraction - 0.8).abs() < 0.02, "hot fraction {fraction}");
    }

    #[test]
    fn single_selection_is_constant_and_clamped() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(ColumnSelection::Single(5).pick(&mut rng, 10), 5);
        assert_eq!(ColumnSelection::Single(50).pick(&mut rng, 10), 9);
    }

    #[test]
    fn skewed_selection_handles_tiny_tables() {
        let mut rng = StdRng::seed_from_u64(4);
        let sel = ColumnSelection::paper_skew();
        for _ in 0..100 {
            assert!(sel.pick(&mut rng, 1) == 0);
            assert!(sel.pick(&mut rng, 2) < 2);
        }
    }
}
