//! The concurrent-scan workload of Sections 6.1 and 6.2.
//!
//! Every client holds a prepared statement per column
//! (`SELECT COLx FROM TBL WHERE COLx >= ? AND COLx <= ?`) and continuously
//! picks one to execute, with no think time. The workload parameters are the
//! column-selection distribution, the predicate selectivity and whether the
//! optimizer may use indexes.

use numascan_core::{ColumnRef, QueryGenerator, QueryKind, QuerySpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::selection::ColumnSelection;

/// The closed-loop scan workload.
#[derive(Debug, Clone)]
pub struct ScanWorkload {
    table: usize,
    payload_columns: usize,
    first_payload_column: usize,
    selection: ColumnSelection,
    selectivity: f64,
    allow_index: bool,
    rng: StdRng,
}

impl ScanWorkload {
    /// Creates a scan workload over the `payload_columns` payload columns of
    /// table `table` (column 0 is assumed to be the ID column and is never
    /// queried, as in the paper).
    pub fn new(
        table: usize,
        payload_columns: usize,
        selection: ColumnSelection,
        selectivity: f64,
        seed: u64,
    ) -> Self {
        assert!(payload_columns > 0);
        ScanWorkload {
            table,
            payload_columns,
            first_payload_column: 1,
            selection,
            selectivity: selectivity.clamp(0.0, 1.0),
            allow_index: false,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Allows the optimizer to use inverted indexes for low selectivities.
    pub fn with_indexes(mut self, allow: bool) -> Self {
        self.allow_index = allow;
        self
    }

    /// Changes the predicate selectivity.
    pub fn with_selectivity(mut self, selectivity: f64) -> Self {
        self.selectivity = selectivity.clamp(0.0, 1.0);
        self
    }

    /// The configured selectivity.
    pub fn selectivity(&self) -> f64 {
        self.selectivity
    }
}

impl QueryGenerator for ScanWorkload {
    fn next_query(&mut self, _client: usize) -> QuerySpec {
        let payload_index = self.selection.pick(&mut self.rng, self.payload_columns);
        QuerySpec {
            column: ColumnRef {
                table: self.table,
                column: self.first_payload_column + payload_index,
            },
            kind: QueryKind::Scan { selectivity: self.selectivity, allow_index: self.allow_index },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_never_touch_the_id_column() {
        let mut w = ScanWorkload::new(0, 16, ColumnSelection::Uniform, 0.00001, 7);
        for client in 0..1000 {
            let q = w.next_query(client);
            assert!(q.column.column >= 1 && q.column.column <= 16);
            assert_eq!(q.column.table, 0);
            match q.kind {
                QueryKind::Scan { selectivity, allow_index } => {
                    assert_eq!(selectivity, 0.00001);
                    assert!(!allow_index);
                }
                other => panic!("unexpected kind {other:?}"),
            }
        }
    }

    #[test]
    fn skewed_workload_concentrates_on_the_hot_half() {
        let mut w = ScanWorkload::new(0, 160, ColumnSelection::paper_skew(), 0.001, 11);
        let mut hot = 0;
        for client in 0..10_000 {
            let q = w.next_query(client);
            if ColumnSelection::is_hot_column(q.column.column - 1) {
                hot += 1;
            }
        }
        assert!(hot > 7_500 && hot < 8_500, "hot queries: {hot}");
    }

    #[test]
    fn builder_methods_adjust_parameters() {
        let w = ScanWorkload::new(0, 4, ColumnSelection::Uniform, 0.5, 1)
            .with_indexes(true)
            .with_selectivity(0.1);
        assert_eq!(w.selectivity(), 0.1);
        let mut w = w;
        match w.next_query(0).kind {
            QueryKind::Scan { allow_index, selectivity } => {
                assert!(allow_index);
                assert_eq!(selectivity, 0.1);
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn selectivity_is_clamped() {
        let w = ScanWorkload::new(0, 4, ColumnSelection::Uniform, 7.5, 1);
        assert_eq!(w.selectivity(), 1.0);
    }
}
