//! The paper's synthetic dataset.
//!
//! Section 6: "We generate a dataset with a large table, taking up 100 GiB of
//! a flat CSV file. It consists of 100 million rows, an ID integer column as
//! the primary key, and 160 additional columns of random integers generated
//! with a uniform distribution. We use bitcases 17 to 26 in a round-robin
//! fashion for the 160 columns, to avoid scans with the same speed."

use numascan_core::{ColumnSpec, TableSpec};
use numascan_storage::{Table, TableBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Row count of the paper's dataset.
pub const PAPER_ROWS: u64 = 100_000_000;
/// Number of payload columns of the paper's dataset.
pub const PAPER_COLUMNS: usize = 160;
/// The bitcases cycled through by the payload columns.
pub const PAPER_BITCASES: std::ops::RangeInclusive<u8> = 17..=26;

/// Builds the metadata-only description of the paper's table, scaled to
/// `rows` rows and `payload_columns` columns (pass [`PAPER_ROWS`] and
/// [`PAPER_COLUMNS`] for the full-scale dataset). When `with_index` is set,
/// every payload column also carries an inverted index (used by the
/// selectivity experiment of Figure 14).
pub fn paper_table_spec(rows: u64, payload_columns: usize, with_index: bool) -> TableSpec {
    assert!(payload_columns > 0, "the dataset needs at least one payload column");
    let mut columns = Vec::with_capacity(payload_columns + 1);
    // The ID primary-key column: unique values, so its dictionary has one
    // entry per row.
    columns.push(ColumnSpec {
        name: "id".to_string(),
        rows,
        distinct: rows.max(1),
        value_bytes: 8,
        with_index: false,
    });
    let bitcase_span = (*PAPER_BITCASES.end() - *PAPER_BITCASES.start() + 1) as usize;
    for i in 0..payload_columns {
        let bitcase = *PAPER_BITCASES.start() + (i % bitcase_span) as u8;
        columns.push(ColumnSpec::integer_with_bitcase(
            format!("col{i:03}"),
            rows,
            bitcase,
            with_index,
        ));
    }
    TableSpec::new("scan_tbl", rows, columns)
}

/// Builds a real, materialised table with the same shape as the paper's
/// dataset but at laptop scale, for native execution and functional tests.
/// Values of column `i` are uniform random integers in `0..2^bitcase(i)`.
pub fn small_real_table(rows: usize, payload_columns: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let ids: Vec<i64> = (0..rows as i64).collect();
    let mut builder = TableBuilder::new("scan_tbl_small").add_values("id", &ids, false);
    let bitcase_span = (*PAPER_BITCASES.end() - *PAPER_BITCASES.start() + 1) as usize;
    for i in 0..payload_columns {
        // Keep the dictionaries small relative to the row count so scans and
        // index lookups exercise duplicate values.
        let bitcase = 8 + (i % bitcase_span) as u32;
        let max = 1i64 << bitcase;
        let values: Vec<i64> = (0..rows).map(|_| rng.gen_range(0..max)).collect();
        builder = builder.add_values(format!("col{i:03}"), &values, true);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_has_id_plus_payload_columns_with_cycling_bitcases() {
        let spec = paper_table_spec(PAPER_ROWS, PAPER_COLUMNS, false);
        assert_eq!(spec.columns.len(), 161);
        assert_eq!(spec.rows, 100_000_000);
        assert_eq!(spec.columns[1].bitcase(), 17);
        assert_eq!(spec.columns[10].bitcase(), 26);
        assert_eq!(spec.columns[11].bitcase(), 17);
        // The ID column is the primary key: one distinct value per row.
        assert_eq!(spec.columns[0].distinct, PAPER_ROWS);
    }

    #[test]
    fn paper_spec_scales_down() {
        let spec = paper_table_spec(1_000_000, 8, true);
        assert_eq!(spec.columns.len(), 9);
        assert!(spec.columns[1].with_index);
        assert!(!spec.columns[0].with_index);
    }

    #[test]
    fn small_real_table_is_deterministic_and_well_formed() {
        let a = small_real_table(10_000, 4, 42);
        let b = small_real_table(10_000, 4, 42);
        assert_eq!(a.row_count(), 10_000);
        assert_eq!(a.column_count(), 5);
        let (_, col_a) = a.column_by_name("col001").unwrap();
        let (_, col_b) = b.column_by_name("col001").unwrap();
        assert_eq!(col_a.value_at(123), col_b.value_at(123), "same seed, same data");
        assert!(col_a.has_index());
        let c = small_real_table(10_000, 4, 43);
        let (_, col_c) = c.column_by_name("col001").unwrap();
        // Different seeds almost surely differ somewhere in the first rows.
        let differs = (0..100).any(|i| col_a.value_at(i) != col_c.value_at(i));
        assert!(differs);
    }

    #[test]
    #[should_panic(expected = "at least one payload column")]
    fn zero_payload_columns_is_rejected() {
        paper_table_spec(1000, 0, false);
    }
}
