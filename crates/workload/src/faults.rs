//! Seeded fault schedules for the sharded cluster tier.
//!
//! A [`FaultSchedule`] is a *pure description* of the faults one cluster run
//! injects: message drop/duplication probabilities, delay jitter, worker
//! crash windows, and per-worker straggler slowdowns. It lives in the
//! workload crate — next to the other seeded load generators — so the
//! cluster crate (which executes schedules), the integration tests (which
//! sweep a fault matrix), and the bench harness (which reports fault
//! experiments) all share one definition without a dependency cycle.
//!
//! Schedules are generated deterministically from a [`FaultKind`] and a seed:
//! the same `(kind, workers, seed)` triple always yields byte-identical
//! parameters, which is half of the cluster tier's replayability story (the
//! other half is the simulated transport consuming the schedule through its
//! own seeded RNG).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The family of faults a generated schedule injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// No faults: the transport delivers every message immediately.
    None,
    /// One or two workers crash (lose all in-flight work) and later restart.
    Crash,
    /// Messages are dropped with a fixed probability, in both directions.
    Drop,
    /// Messages arrive after a randomized delay.
    Delay,
    /// One worker serves every request several times slower than the rest.
    Straggler,
}

impl FaultKind {
    /// All kinds that actually inject faults, in matrix order.
    pub const ALL_FAULTY: [FaultKind; 4] =
        [FaultKind::Crash, FaultKind::Drop, FaultKind::Delay, FaultKind::Straggler];

    /// Short lowercase label for logs and snapshot rows.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::None => "none",
            FaultKind::Crash => "crash",
            FaultKind::Drop => "drop",
            FaultKind::Delay => "delay",
            FaultKind::Straggler => "straggler",
        }
    }
}

/// One interval of virtual time during which a worker is down.
///
/// Requests arriving inside the window are lost (the worker never sees
/// them); at `up_at_us` the worker restarts with its shard data intact
/// (crash-restart, not data loss — shard stores are rebuilt from placement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// Index of the crashed worker.
    pub worker: usize,
    /// Virtual microsecond at which the worker goes down (inclusive).
    pub down_at_us: u64,
    /// Virtual microsecond at which the worker is back up (exclusive).
    pub up_at_us: u64,
}

/// A complete, deterministic description of the faults one run injects.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    /// Seed for the transport's per-message random draws (drop/dup/delay).
    pub seed: u64,
    /// Probability that any one message is silently dropped.
    pub drop_probability: f64,
    /// Probability that a delivered message is delivered twice.
    pub duplicate_probability: f64,
    /// Fixed delay added to every message, microseconds of virtual time.
    pub base_delay_us: u64,
    /// Upper bound of the additional per-message uniform random delay.
    pub delay_jitter_us: u64,
    /// Crash windows, in schedule order.
    pub crashes: Vec<CrashWindow>,
    /// Per-worker service-time multipliers `(worker, factor)`.
    pub stragglers: Vec<(usize, f64)>,
}

impl FaultSchedule {
    /// The no-fault schedule: instant, reliable delivery.
    pub fn none(seed: u64) -> Self {
        FaultSchedule {
            seed,
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            base_delay_us: 0,
            delay_jitter_us: 0,
            crashes: Vec::new(),
            stragglers: Vec::new(),
        }
    }

    /// Generates the schedule for `kind` over a cluster of `workers` workers,
    /// deterministically from `seed`.
    pub fn generate(kind: FaultKind, workers: usize, seed: u64) -> Self {
        assert!(workers > 0, "a schedule needs at least one worker");
        let mut schedule = FaultSchedule::none(seed);
        // Derive parameter draws from a separate stream so the transport's
        // per-message draws (seeded with `seed` itself) are unaffected.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17_5EED_0000_0000);
        match kind {
            FaultKind::None => {}
            FaultKind::Crash => {
                let windows = 1 + rng.gen_range(0..2usize).min(workers - 1);
                for _ in 0..windows {
                    let worker = rng.gen_range(0..workers);
                    // Queries start at virtual time zero, so the window must
                    // open within the first service interval (~1ms) to ever
                    // be hit; the 20-80ms outage then forces failover (or,
                    // without replicas, retries until restart or the budget).
                    let down_at_us = rng.gen_range(0..1_000u64);
                    let duration = rng.gen_range(20_000..80_000u64);
                    schedule.crashes.push(CrashWindow {
                        worker,
                        down_at_us,
                        up_at_us: down_at_us + duration,
                    });
                }
            }
            FaultKind::Drop => {
                schedule.drop_probability = 0.15 + rng.gen_range(0..250u32) as f64 / 1_000.0;
                schedule.duplicate_probability = 0.05;
            }
            FaultKind::Delay => {
                schedule.base_delay_us = rng.gen_range(500..2_000u64);
                schedule.delay_jitter_us = rng.gen_range(2_000..10_000u64);
            }
            FaultKind::Straggler => {
                // A 6-16x slowdown straddles the default 10ms attempt
                // timeout (1ms base service), so some seeds straggle within
                // the timeout and others force retries + duplicate drops.
                let worker = rng.gen_range(0..workers);
                let factor = 6.0 + rng.gen_range(0..100u32) as f64 / 10.0;
                schedule.stragglers.push((worker, factor));
            }
        }
        schedule
    }

    /// Whether `worker` is up at virtual time `at_us`.
    pub fn worker_up(&self, worker: usize, at_us: u64) -> bool {
        !self
            .crashes
            .iter()
            .any(|w| w.worker == worker && at_us >= w.down_at_us && at_us < w.up_at_us)
    }

    /// The service-time multiplier of `worker` (1.0 unless it straggles).
    pub fn straggle_factor(&self, worker: usize) -> f64 {
        self.stragglers.iter().find(|(w, _)| *w == worker).map_or(1.0, |(_, f)| *f)
    }

    /// A one-line human-readable summary for `--nocapture` test logs.
    pub fn summary(&self) -> String {
        let mut parts = vec![format!("seed={:#x}", self.seed)];
        if self.drop_probability > 0.0 {
            parts.push(format!("drop={:.2}", self.drop_probability));
        }
        if self.duplicate_probability > 0.0 {
            parts.push(format!("dup={:.2}", self.duplicate_probability));
        }
        if self.base_delay_us > 0 || self.delay_jitter_us > 0 {
            parts.push(format!("delay={}us+{}us", self.base_delay_us, self.delay_jitter_us));
        }
        for w in &self.crashes {
            parts.push(format!(
                "crash(w{} {}..{}ms)",
                w.worker,
                w.down_at_us / 1_000,
                w.up_at_us / 1_000
            ));
        }
        for (w, f) in &self.stragglers {
            parts.push(format!("straggler(w{w} x{f:.1})"));
        }
        if parts.len() == 1 {
            parts.push("no faults".to_string());
        }
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        for kind in FaultKind::ALL_FAULTY {
            let a = FaultSchedule::generate(kind, 4, 99);
            let b = FaultSchedule::generate(kind, 4, 99);
            assert_eq!(a, b, "{kind:?} must replay identically");
            let c = FaultSchedule::generate(kind, 4, 100);
            assert_ne!(a, c, "{kind:?} must vary with the seed");
        }
    }

    #[test]
    fn schedules_inject_what_their_kind_says() {
        let crash = FaultSchedule::generate(FaultKind::Crash, 3, 7);
        assert!(!crash.crashes.is_empty());
        let w = crash.crashes[0];
        assert!(!crash.worker_up(w.worker, w.down_at_us));
        // Windows for one worker may overlap; past the last one it is up.
        let last_up = crash.crashes.iter().map(|c| c.up_at_us).max().unwrap();
        assert!(crash.worker_up(w.worker, last_up));

        let drop = FaultSchedule::generate(FaultKind::Drop, 3, 7);
        assert!((0.15..=0.4).contains(&drop.drop_probability));

        let delay = FaultSchedule::generate(FaultKind::Delay, 3, 7);
        assert!(delay.delay_jitter_us >= 2_000);

        let straggler = FaultSchedule::generate(FaultKind::Straggler, 3, 7);
        let (w, f) = straggler.stragglers[0];
        assert!(f >= 4.0 && straggler.straggle_factor(w) == f);
        assert_eq!(straggler.straggle_factor(w + 1), 1.0);
    }

    #[test]
    fn summaries_name_the_faults() {
        assert!(FaultSchedule::none(1).summary().contains("no faults"));
        let s = FaultSchedule::generate(FaultKind::Straggler, 2, 3).summary();
        assert!(s.contains("straggler"), "{s}");
    }
}
