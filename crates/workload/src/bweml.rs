//! A SAP BW-EML-style reporting workload (Section 6.3).
//!
//! BW-EML (Business Warehouse Enhanced Mixed Load) is a proprietary SAP
//! benchmark; the paper describes the properties that matter for its
//! experiments: the data model has three InfoCubes (around one billion records
//! in total), the reporting load is dominated by scans and aggregations over
//! the cubes, the aggregate expressions are *simple*, and the workload is
//! therefore memory-intensive — which is why Bound beats Target for it.
//! This module models exactly that shape.

use numascan_core::{ColumnRef, ColumnSpec, QueryGenerator, QuerySpec, TableSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of InfoCubes in the BW-EML data model.
pub const INFOCUBES: usize = 3;
/// Key-figure (measure) columns per InfoCube that reporting queries aggregate.
pub const KEY_FIGURES_PER_CUBE: usize = 8;
/// CPU operations per row of a BW-EML aggregation (simple sums / counts).
pub const BWEML_OPS_PER_ROW: f64 = 2.0;

/// Metadata descriptions of the three InfoCubes, sized so that their total
/// row count is `total_rows` (the paper uses one billion records).
pub fn infocube_table_specs(total_rows: u64) -> Vec<TableSpec> {
    let rows_per_cube = (total_rows / INFOCUBES as u64).max(1);
    (0..INFOCUBES)
        .map(|cube| {
            let columns = (0..KEY_FIGURES_PER_CUBE)
                .map(|k| {
                    ColumnSpec::integer_with_bitcase(
                        format!("cube{cube}_kf{k}"),
                        rows_per_cube,
                        18 + (k % 6) as u8,
                        false,
                    )
                })
                .collect();
            TableSpec::new(format!("infocube{cube}"), rows_per_cube, columns)
        })
        .collect()
}

/// The BW-EML reporting load: every navigation step aggregates a key figure of
/// a randomly chosen InfoCube.
#[derive(Debug, Clone)]
pub struct BwEmlWorkload {
    /// Catalog table indexes of the three cubes.
    cube_tables: Vec<usize>,
    rng: StdRng,
}

impl BwEmlWorkload {
    /// Creates the workload; `cube_tables` are the catalog indexes of the
    /// placed InfoCubes.
    pub fn new(cube_tables: Vec<usize>, seed: u64) -> Self {
        assert!(!cube_tables.is_empty(), "BW-EML needs at least one InfoCube");
        BwEmlWorkload { cube_tables, rng: StdRng::seed_from_u64(seed) }
    }
}

impl QueryGenerator for BwEmlWorkload {
    fn next_query(&mut self, _client: usize) -> QuerySpec {
        let cube = self.cube_tables[self.rng.gen_range(0..self.cube_tables.len())];
        let column = self.rng.gen_range(0..KEY_FIGURES_PER_CUBE);
        QuerySpec::aggregate(ColumnRef { table: cube, column }, BWEML_OPS_PER_ROW)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numascan_core::QueryKind;

    #[test]
    fn three_cubes_split_the_billion_rows() {
        let cubes = infocube_table_specs(1_000_000_000);
        assert_eq!(cubes.len(), 3);
        for cube in &cubes {
            assert_eq!(cube.rows, 333_333_333);
            assert_eq!(cube.columns.len(), KEY_FIGURES_PER_CUBE);
        }
    }

    #[test]
    fn reporting_queries_are_simple_aggregations_over_all_cubes() {
        let mut w = BwEmlWorkload::new(vec![0, 1, 2], 9);
        let mut seen_tables = std::collections::HashSet::new();
        for client in 0..300 {
            let q = w.next_query(client);
            seen_tables.insert(q.column.table);
            match q.kind {
                QueryKind::Aggregate { ops_per_row } => assert_eq!(ops_per_row, BWEML_OPS_PER_ROW),
                other => panic!("unexpected kind {other:?}"),
            }
        }
        assert_eq!(seen_tables.len(), 3, "all cubes should be queried");
    }

    #[test]
    #[should_panic(expected = "at least one InfoCube")]
    fn empty_cube_list_is_rejected() {
        BwEmlWorkload::new(vec![], 1);
    }
}
