//! Workload shifts for the online adaptive loop.
//!
//! The paper's adaptivity argument (Sections 6.3 and 7) rests on workloads
//! that *change*: a BW-EML-style reporting load moves its focus from one
//! InfoCube to another, and a placement chosen for phase one is wrong for
//! phase two. This module models that shape against the native engine: a
//! [`ShiftWorkload`] is a sequence of phases, each phase hammering a hot set
//! of columns with seeded mixed range/IN-list scans from N concurrent
//! clients, and [`replay_shift`] drives it through the session layer epoch by
//! epoch, optionally running the adaptive placer's closed loop between
//! epochs.
//!
//! Everything is seeded and the telemetry is byte-exact (attribution follows
//! the data's home socket, not the executing thread), so two replays with the
//! same seed produce identical per-epoch signals and identical placer
//! actions regardless of thread interleavings — which is what lets the test
//! suite pin the adaptive behaviour deterministically.

use std::time::{Duration, Instant};

use numascan_core::{AdaptiveDataPlacer, PlacerAction, ScanRequest, SessionManager};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One phase of a shifting workload: a hot column set queried for a number of
/// epochs.
#[derive(Debug, Clone)]
pub struct ShiftPhase {
    /// Names of the columns this phase concentrates on.
    pub hot_columns: Vec<String>,
    /// Measurement epochs the phase lasts.
    pub epochs: usize,
}

impl ShiftPhase {
    /// A phase over `hot_columns` lasting `epochs` epochs.
    pub fn new(hot_columns: Vec<String>, epochs: usize) -> Self {
        assert!(!hot_columns.is_empty(), "a phase needs at least one hot column");
        assert!(epochs > 0, "a phase needs at least one epoch");
        ShiftPhase { hot_columns, epochs }
    }
}

/// Configuration of a shift replay.
#[derive(Debug, Clone)]
pub struct ShiftConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Statements each client issues per epoch.
    pub queries_per_client: usize,
    /// Width of the generated BETWEEN ranges in dictionary-value space.
    pub range_width: i64,
    /// Upper bound (exclusive) of generated predicate values.
    pub value_domain: i64,
    /// Every n-th statement of a client is an IN-list scan instead of a range
    /// scan (0 disables IN-lists).
    pub in_list_every: usize,
    /// Master seed; every (phase, epoch, client) derives its own stream.
    pub seed: u64,
}

impl Default for ShiftConfig {
    fn default() -> Self {
        ShiftConfig {
            clients: 4,
            queries_per_client: 4,
            range_width: 40,
            value_domain: 256,
            in_list_every: 3,
            seed: 0x5EED,
        }
    }
}

impl ShiftConfig {
    /// The deterministic request stream of one client in one epoch.
    pub fn client_requests(
        &self,
        phase: &ShiftPhase,
        phase_index: usize,
        epoch: usize,
        client: usize,
    ) -> Vec<ScanRequest> {
        let mut rng = StdRng::seed_from_u64(
            self.seed
                ^ (phase_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (epoch as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
                ^ (client as u64).wrapping_mul(0x94D0_49BB_1331_11EB),
        );
        (0..self.queries_per_client)
            .map(|q| {
                let column = phase.hot_columns[rng.gen_range(0..phase.hot_columns.len())].clone();
                let in_list = self.in_list_every > 0 && (q + 1) % self.in_list_every == 0;
                if in_list {
                    let len = rng.gen_range(1..6usize);
                    let values = (0..len).map(|_| rng.gen_range(0..self.value_domain)).collect();
                    ScanRequest::in_list(column, values)
                } else {
                    let lo = rng.gen_range(0..self.value_domain);
                    ScanRequest::between(column, lo, lo + self.range_width)
                }
            })
            .collect()
    }
}

/// What one epoch of a replay measured.
#[derive(Debug, Clone)]
pub struct EpochStats {
    /// Phase index the epoch belongs to.
    pub phase: usize,
    /// Epoch index within the whole replay.
    pub epoch: usize,
    /// IV bytes streamed from each socket's local memory.
    pub socket_bytes: Vec<u64>,
    /// Spread between the most and least utilized socket (relative
    /// utilization, byte-exact).
    pub utilization_spread: f64,
    /// The placer action taken after the epoch (`None` action when the loop
    /// ran but left the placement alone, absent when adaptivity was off).
    pub action: Option<PlacerAction>,
}

/// The full record of a shift replay.
#[derive(Debug, Clone)]
pub struct ShiftReport {
    /// Per-epoch measurements, in execution order.
    pub epochs: Vec<EpochStats>,
}

impl ShiftReport {
    /// All non-trivial placer actions taken during the replay.
    pub fn placement_actions(&self) -> Vec<&PlacerAction> {
        self.epochs
            .iter()
            .filter_map(|e| e.action.as_ref())
            .filter(|a| !matches!(a, PlacerAction::None))
            .collect()
    }

    /// Mean utilization spread over the epochs of one phase.
    pub fn phase_mean_spread(&self, phase: usize) -> f64 {
        let spreads: Vec<f64> =
            self.epochs.iter().filter(|e| e.phase == phase).map(|e| e.utilization_spread).collect();
        if spreads.is_empty() {
            0.0
        } else {
            spreads.iter().sum::<f64>() / spreads.len() as f64
        }
    }

    /// Utilization spread of the replay's final epoch (the post-shift state).
    pub fn final_spread(&self) -> f64 {
        self.epochs.last().map_or(0.0, |e| e.utilization_spread)
    }

    /// Total bytes streamed per socket over the whole replay.
    pub fn total_socket_bytes(&self) -> Vec<u64> {
        let sockets = self.epochs.first().map_or(0, |e| e.socket_bytes.len());
        let mut out = vec![0u64; sockets];
        for e in &self.epochs {
            for (acc, b) in out.iter_mut().zip(&e.socket_bytes) {
                *acc += b;
            }
        }
        out
    }
}

/// Replays `phases` against `session` epoch by epoch: every epoch runs
/// `config.clients` concurrent client threads issuing their seeded request
/// streams, then snapshots the engine's telemetry; with a `placer`, the
/// closed loop additionally decides and applies one placement action per
/// epoch and closes the pool's bandwidth epoch.
///
/// Panics if any client statement fails (unknown column), since a shift
/// replay with missing columns measures nothing.
pub fn replay_shift(
    session: &SessionManager,
    placer: Option<&AdaptiveDataPlacer>,
    phases: &[ShiftPhase],
    config: &ShiftConfig,
) -> ShiftReport {
    for phase in phases {
        for column in &phase.hot_columns {
            assert!(
                session.engine().table().column_by_name(column).is_some(),
                "unknown column '{column}' in shift phase"
            );
        }
    }
    let mut epochs = Vec::new();
    let mut epoch_index = 0usize;
    for (phase_index, phase) in phases.iter().enumerate() {
        for _ in 0..phase.epochs {
            let started = Instant::now();
            std::thread::scope(|scope| {
                for client in 0..config.clients {
                    let requests = config.client_requests(phase, phase_index, epoch_index, client);
                    scope.spawn(move || {
                        for request in &requests {
                            session
                                .execute_rows(request)
                                .unwrap_or_else(|e| panic!("{e} in {request:?}"));
                        }
                    });
                }
            });
            let elapsed = started.elapsed().max(Duration::from_micros(1));
            let (epoch, action) = match placer {
                Some(placer) => {
                    let (epoch, action) = session.rebalance_epoch(placer, elapsed);
                    (epoch, Some(action))
                }
                None => {
                    session.engine().advance_bandwidth_epoch(elapsed);
                    (session.take_epoch(), None)
                }
            };
            epochs.push(EpochStats {
                phase: phase_index,
                epoch: epoch_index,
                socket_bytes: epoch.socket_bytes.clone(),
                utilization_spread: epoch.utilization_spread(),
                action,
            });
            epoch_index += 1;
        }
    }
    ShiftReport { epochs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::small_real_table;
    use numascan_core::{NativeEngine, ScanSpec, SessionManager};
    use numascan_numasim::Topology;
    use numascan_scheduler::SchedulingStrategy;

    fn session() -> SessionManager {
        SessionManager::new(NativeEngine::new(
            small_real_table(8_000, 4, 11),
            &Topology::four_socket_ivybridge_ex(),
            SchedulingStrategy::Bound,
        ))
    }

    #[test]
    fn request_streams_are_deterministic_and_phase_scoped() {
        let cfg = ShiftConfig::default();
        let phase = ShiftPhase::new(vec!["col000".into(), "col001".into()], 2);
        let a = cfg.client_requests(&phase, 0, 1, 2);
        let b = cfg.client_requests(&phase, 0, 1, 2);
        assert_eq!(a, b, "same (phase, epoch, client) must replay identically");
        let c = cfg.client_requests(&phase, 1, 1, 2);
        assert_ne!(a, c, "a different phase draws a different stream");
        assert!(a.iter().all(|r| phase.hot_columns.contains(&r.column().to_string())));
        // The default config mixes both request kinds.
        assert!(a.iter().any(|r| matches!(r.spec, ScanSpec::InList { .. })));
        assert!(a.iter().any(|r| matches!(r.spec, ScanSpec::Between { .. })));
    }

    #[test]
    fn replay_collects_one_epoch_stat_per_epoch() {
        let s = session();
        let phases =
            [ShiftPhase::new(vec!["col000".into()], 2), ShiftPhase::new(vec!["col002".into()], 1)];
        let cfg = ShiftConfig { clients: 2, queries_per_client: 2, ..Default::default() };
        let report = replay_shift(&s, None, &phases, &cfg);
        assert_eq!(report.epochs.len(), 3);
        assert_eq!(report.epochs[0].phase, 0);
        assert_eq!(report.epochs[2].phase, 1);
        assert!(report.placement_actions().is_empty(), "no placer, no actions");
        assert!(report.total_socket_bytes().iter().sum::<u64>() > 0);
        // One hot column on one socket: the spread is maximal.
        assert!(report.final_spread() > 0.9, "{report:?}");
        s.shutdown();
    }

    #[test]
    #[should_panic(expected = "unknown column")]
    fn replaying_a_missing_column_panics() {
        let s = session();
        let phases = [ShiftPhase::new(vec!["nope".into()], 1)];
        replay_shift(&s, None, &phases, &ShiftConfig::default());
    }

    #[test]
    #[should_panic(expected = "at least one hot column")]
    fn empty_phases_are_rejected() {
        ShiftPhase::new(vec![], 1);
    }
}
